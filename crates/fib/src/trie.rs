//! Arena-based binary trie keyed by [`Prefix`].
//!
//! Every algorithm in the workspace — compression, RRC-ME, partitioning,
//! the update pipeline — operates on this structure. Nodes live in a `Vec`
//! arena with `u32` handles; removed nodes are recycled through a free
//! list, so long update storms do not leak arena slots.
//!
//! The trie maintains, per node, the number of values stored in its
//! subtree (`route_count`). That counter is what makes RRC-ME's
//! "shallowest route-free extension" query O(depth) instead of a subtree
//! walk.

use crate::prefix::{Bit, Prefix};

const NIL: u32 = u32::MAX;

#[derive(Debug, Clone)]
struct Node<T> {
    prefix: Prefix,
    child: [u32; 2],
    parent: u32,
    value: Option<T>,
    /// Number of `Some` values stored in this node's subtree (inclusive).
    route_count: u32,
}

impl<T> Node<T> {
    fn new(prefix: Prefix, parent: u32) -> Self {
        Node {
            prefix,
            child: [NIL, NIL],
            parent,
            value: None,
            route_count: 0,
        }
    }
}

/// A binary trie mapping [`Prefix`]es to values.
///
/// # Examples
///
/// ```
/// use clue_fib::{Prefix, Trie};
///
/// let mut t = Trie::new();
/// t.insert("10.0.0.0/8".parse()?, 1u32);
/// t.insert("10.1.0.0/16".parse()?, 2u32);
///
/// // Longest-prefix match:
/// let (p, v) = t.lookup(0x0A01_0203).unwrap();
/// assert_eq!((p.to_string().as_str(), *v), ("10.1.0.0/16", 2));
/// let (p, v) = t.lookup(0x0A02_0304).unwrap();
/// assert_eq!((p.to_string().as_str(), *v), ("10.0.0.0/8", 1));
/// # Ok::<(), clue_fib::ParsePrefixError>(())
/// ```
#[derive(Debug, Clone)]
pub struct Trie<T> {
    nodes: Vec<Node<T>>,
    free: Vec<u32>,
    /// Index of the root node (always 0 once allocated).
    root: u32,
    len: usize,
}

impl<T> Default for Trie<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> Trie<T> {
    /// Creates an empty trie.
    #[must_use]
    pub fn new() -> Self {
        Trie {
            nodes: vec![Node::new(Prefix::root(), NIL)],
            free: Vec::new(),
            root: 0,
            len: 0,
        }
    }

    /// Number of stored values.
    #[must_use]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the trie stores no values.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of allocated (live) trie nodes, including internal ones.
    #[must_use]
    pub fn node_count(&self) -> usize {
        self.nodes.len() - self.free.len()
    }

    /// A read-only handle to the root node.
    #[must_use]
    pub fn root(&self) -> NodeRef<'_, T> {
        NodeRef {
            trie: self,
            idx: self.root,
        }
    }

    fn alloc(&mut self, prefix: Prefix, parent: u32) -> u32 {
        if let Some(idx) = self.free.pop() {
            self.nodes[idx as usize] = Node::new(prefix, parent);
            idx
        } else {
            self.nodes.push(Node::new(prefix, parent));
            (self.nodes.len() - 1) as u32
        }
    }

    /// Walks from the root to the node for `prefix`, creating path nodes
    /// as needed, and returns its index.
    fn ensure_node(&mut self, prefix: Prefix) -> u32 {
        let mut cur = self.root;
        for depth in 0..prefix.len() {
            let bit = Prefix::addr_bit(prefix.bits(), depth);
            let next = self.nodes[cur as usize].child[bit.index()];
            cur = if next == NIL {
                let child_prefix = self.nodes[cur as usize]
                    .prefix
                    .child(bit)
                    .expect("depth < prefix.len() <= 32");
                let idx = self.alloc(child_prefix, cur);
                self.nodes[cur as usize].child[bit.index()] = idx;
                idx
            } else {
                next
            };
        }
        cur
    }

    /// Finds the node index for `prefix` without creating anything.
    fn find_node(&self, prefix: Prefix) -> Option<u32> {
        let mut cur = self.root;
        for depth in 0..prefix.len() {
            let bit = Prefix::addr_bit(prefix.bits(), depth);
            let next = self.nodes[cur as usize].child[bit.index()];
            if next == NIL {
                return None;
            }
            cur = next;
        }
        Some(cur)
    }

    fn bump_counts(&mut self, mut idx: u32, delta: i32) {
        loop {
            let n = &mut self.nodes[idx as usize];
            n.route_count = n.route_count.wrapping_add_signed(delta);
            if n.parent == NIL {
                break;
            }
            idx = n.parent;
        }
    }

    /// Inserts (or replaces) the value at `prefix`, returning the previous
    /// value if any.
    pub fn insert(&mut self, prefix: Prefix, value: T) -> Option<T> {
        let idx = self.ensure_node(prefix);
        let old = self.nodes[idx as usize].value.replace(value);
        if old.is_none() {
            self.len += 1;
            self.bump_counts(idx, 1);
        }
        old
    }

    /// Removes the value at `prefix`, pruning now-empty branches, and
    /// returns it.
    pub fn remove(&mut self, prefix: Prefix) -> Option<T> {
        let idx = self.find_node(prefix)?;
        let old = self.nodes[idx as usize].value.take()?;
        self.len -= 1;
        self.bump_counts(idx, -1);
        self.prune(idx);
        Some(old)
    }

    /// Frees `idx` and its now-useless ancestors: nodes with no value, no
    /// children, and a parent.
    fn prune(&mut self, mut idx: u32) {
        loop {
            let n = &self.nodes[idx as usize];
            if n.value.is_some() || n.child[0] != NIL || n.child[1] != NIL || n.parent == NIL {
                return;
            }
            let parent = n.parent;
            let bit = n.prefix.branch().expect("non-root node has a branch");
            self.nodes[parent as usize].child[bit.index()] = NIL;
            self.free.push(idx);
            idx = parent;
        }
    }

    /// Returns a reference to the value stored exactly at `prefix`.
    #[must_use]
    pub fn get(&self, prefix: Prefix) -> Option<&T> {
        let idx = self.find_node(prefix)?;
        self.nodes[idx as usize].value.as_ref()
    }

    /// Returns a mutable reference to the value stored exactly at `prefix`.
    pub fn get_mut(&mut self, prefix: Prefix) -> Option<&mut T> {
        let idx = self.find_node(prefix)?;
        self.nodes[idx as usize].value.as_mut()
    }

    /// Whether a value is stored exactly at `prefix`.
    #[must_use]
    pub fn contains_prefix(&self, prefix: Prefix) -> bool {
        self.get(prefix).is_some()
    }

    /// Longest-prefix match for `addr`.
    #[must_use]
    pub fn lookup(&self, addr: u32) -> Option<(Prefix, &T)> {
        self.lpm_node(addr)
            .map(|n| (n.prefix(), n.value().expect("lpm node has a value")))
    }

    /// Longest-prefix match, returning a node handle (used by RRC-ME).
    #[must_use]
    pub fn lpm_node(&self, addr: u32) -> Option<NodeRef<'_, T>> {
        let mut cur = self.root;
        let mut best = None;
        let mut depth = 0u8;
        loop {
            if self.nodes[cur as usize].value.is_some() {
                best = Some(cur);
            }
            if depth == 32 {
                break;
            }
            let bit = Prefix::addr_bit(addr, depth);
            let next = self.nodes[cur as usize].child[bit.index()];
            if next == NIL {
                break;
            }
            cur = next;
            depth += 1;
        }
        best.map(|idx| NodeRef { trie: self, idx })
    }

    /// A handle to the node storing `prefix` (value or internal), if present
    /// in the arena.
    #[must_use]
    pub fn node(&self, prefix: Prefix) -> Option<NodeRef<'_, T>> {
        self.find_node(prefix)
            .map(|idx| NodeRef { trie: self, idx })
    }

    /// In-order iterator over `(prefix, &value)` pairs.
    ///
    /// Visit order: a node's 0-subtree, the node itself, its 1-subtree —
    /// i.e. ascending address ranges for non-overlapping sets.
    #[must_use]
    pub fn iter(&self) -> Iter<'_, T> {
        Iter {
            trie: self,
            stack: vec![Visit::Down(self.root)],
        }
    }

    /// In-order iterator over the subtree rooted at `prefix` (empty if the
    /// node does not exist).
    #[must_use]
    pub fn iter_subtree(&self, prefix: Prefix) -> Iter<'_, T> {
        let stack = match self.find_node(prefix) {
            Some(idx) => vec![Visit::Down(idx)],
            None => Vec::new(),
        };
        Iter { trie: self, stack }
    }

    /// Removes every value (and node) except the root.
    pub fn clear(&mut self) {
        self.nodes.clear();
        self.free.clear();
        self.nodes.push(Node::new(Prefix::root(), NIL));
        self.root = 0;
        self.len = 0;
    }
}

impl<T: Clone> Trie<T> {
    /// Builds a trie from `(prefix, value)` pairs; later duplicates replace
    /// earlier ones.
    pub fn from_pairs<I: IntoIterator<Item = (Prefix, T)>>(pairs: I) -> Self {
        let mut t = Trie::new();
        for (p, v) in pairs {
            t.insert(p, v);
        }
        t
    }
}

impl<T> FromIterator<(Prefix, T)> for Trie<T> {
    fn from_iter<I: IntoIterator<Item = (Prefix, T)>>(iter: I) -> Self {
        let mut t = Trie::new();
        for (p, v) in iter {
            t.insert(p, v);
        }
        t
    }
}

impl<T> Extend<(Prefix, T)> for Trie<T> {
    fn extend<I: IntoIterator<Item = (Prefix, T)>>(&mut self, iter: I) {
        for (p, v) in iter {
            self.insert(p, v);
        }
    }
}

/// A read-only handle to a trie node.
///
/// Handles expose the structural view (children, subtree route counts)
/// needed by the compression passes and RRC-ME without copying the trie.
#[derive(Debug)]
pub struct NodeRef<'a, T> {
    trie: &'a Trie<T>,
    idx: u32,
}

impl<T> Clone for NodeRef<'_, T> {
    fn clone(&self) -> Self {
        *self
    }
}

impl<T> Copy for NodeRef<'_, T> {}

impl<'a, T> NodeRef<'a, T> {
    fn node(&self) -> &'a Node<T> {
        &self.trie.nodes[self.idx as usize]
    }

    /// The prefix this node represents.
    #[must_use]
    pub fn prefix(&self) -> Prefix {
        self.node().prefix
    }

    /// The value stored at this node, if any.
    #[must_use]
    pub fn value(&self) -> Option<&'a T> {
        self.node().value.as_ref()
    }

    /// The child on branch `bit`, if allocated.
    #[must_use]
    pub fn child(&self, bit: Bit) -> Option<NodeRef<'a, T>> {
        let idx = self.node().child[bit.index()];
        (idx != NIL).then_some(NodeRef {
            trie: self.trie,
            idx,
        })
    }

    /// Number of values stored in this subtree, including this node.
    #[must_use]
    pub fn route_count(&self) -> u32 {
        self.node().route_count
    }

    /// Number of values stored strictly below this node.
    #[must_use]
    pub fn descendant_routes(&self) -> u32 {
        self.node().route_count - u32::from(self.node().value.is_some())
    }

    /// Whether this node is a leaf (no children allocated).
    #[must_use]
    pub fn is_leaf(&self) -> bool {
        let n = self.node();
        n.child[0] == NIL && n.child[1] == NIL
    }
}

enum Visit {
    Down(u32),
    Emit(u32),
}

/// In-order iterator over a [`Trie`]; created by [`Trie::iter`].
pub struct Iter<'a, T> {
    trie: &'a Trie<T>,
    stack: Vec<Visit>,
}

impl<'a, T> Iterator for Iter<'a, T> {
    type Item = (Prefix, &'a T);

    fn next(&mut self) -> Option<Self::Item> {
        while let Some(visit) = self.stack.pop() {
            match visit {
                Visit::Down(idx) => {
                    let n = &self.trie.nodes[idx as usize];
                    // Push in reverse order: right subtree, self, left subtree.
                    if n.child[1] != NIL {
                        self.stack.push(Visit::Down(n.child[1]));
                    }
                    self.stack.push(Visit::Emit(idx));
                    if n.child[0] != NIL {
                        self.stack.push(Visit::Down(n.child[0]));
                    }
                }
                Visit::Emit(idx) => {
                    let n = &self.trie.nodes[idx as usize];
                    if let Some(v) = n.value.as_ref() {
                        return Some((n.prefix, v));
                    }
                }
            }
        }
        None
    }
}

impl<'a, T> IntoIterator for &'a Trie<T> {
    type Item = (Prefix, &'a T);
    type IntoIter = Iter<'a, T>;

    fn into_iter(self) -> Self::IntoIter {
        self.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(s: &str) -> Prefix {
        s.parse().unwrap()
    }

    #[test]
    fn empty_trie_has_no_matches() {
        let t: Trie<u32> = Trie::new();
        assert!(t.is_empty());
        assert_eq!(t.lookup(0x0102_0304), None);
        assert_eq!(t.iter().count(), 0);
    }

    #[test]
    fn insert_get_remove_round_trip() {
        let mut t = Trie::new();
        assert_eq!(t.insert(p("10.0.0.0/8"), 7), None);
        assert_eq!(t.len(), 1);
        assert_eq!(t.get(p("10.0.0.0/8")), Some(&7));
        assert_eq!(t.insert(p("10.0.0.0/8"), 9), Some(7));
        assert_eq!(t.len(), 1);
        assert_eq!(t.remove(p("10.0.0.0/8")), Some(9));
        assert!(t.is_empty());
        assert_eq!(t.remove(p("10.0.0.0/8")), None);
    }

    #[test]
    fn lpm_prefers_longest() {
        let mut t = Trie::new();
        t.insert(p("0.0.0.0/0"), 0);
        t.insert(p("10.0.0.0/8"), 1);
        t.insert(p("10.1.0.0/16"), 2);
        t.insert(p("10.1.2.0/24"), 3);
        assert_eq!(t.lookup(0x0A01_0203).map(|(_, v)| *v), Some(3));
        assert_eq!(t.lookup(0x0A01_0303).map(|(_, v)| *v), Some(2));
        assert_eq!(t.lookup(0x0A02_0203).map(|(_, v)| *v), Some(1));
        assert_eq!(t.lookup(0x0B00_0000).map(|(_, v)| *v), Some(0));
    }

    #[test]
    fn lpm_miss_without_default_route() {
        let mut t = Trie::new();
        t.insert(p("10.0.0.0/8"), 1);
        assert_eq!(t.lookup(0x0B00_0000), None);
    }

    #[test]
    fn host_route_matches_single_address() {
        let mut t = Trie::new();
        t.insert(p("1.2.3.4/32"), 1);
        assert_eq!(t.lookup(0x0102_0304).map(|(_, v)| *v), Some(1));
        assert_eq!(t.lookup(0x0102_0305), None);
    }

    #[test]
    fn pruning_frees_arena_slots() {
        let mut t = Trie::new();
        t.insert(p("10.1.2.0/24"), 1);
        let allocated = t.node_count();
        assert_eq!(allocated, 25); // root + 24 path nodes
        t.remove(p("10.1.2.0/24"));
        assert_eq!(t.node_count(), 1); // only root survives
                                       // Re-insertion recycles freed slots instead of growing the arena.
        t.insert(p("10.1.2.0/24"), 2);
        assert_eq!(t.nodes.len(), 25);
    }

    #[test]
    fn pruning_stops_at_valued_ancestor() {
        let mut t = Trie::new();
        t.insert(p("10.0.0.0/8"), 1);
        t.insert(p("10.1.2.0/24"), 2);
        t.remove(p("10.1.2.0/24"));
        assert_eq!(t.get(p("10.0.0.0/8")), Some(&1));
        assert_eq!(t.node_count(), 9); // root + 8 path nodes to /8
    }

    #[test]
    fn iter_is_in_order() {
        let mut t = Trie::new();
        let prefixes = ["200.0.0.0/8", "10.0.0.0/8", "10.128.0.0/9", "128.0.0.0/1"];
        for (i, s) in prefixes.iter().enumerate() {
            t.insert(p(s), i);
        }
        let got: Vec<Prefix> = t.iter().map(|(px, _)| px).collect();
        // In-order = ancestors before the 1-branch, after the 0-branch.
        assert_eq!(
            got,
            vec![
                p("10.0.0.0/8"),
                p("10.128.0.0/9"),
                p("128.0.0.0/1"),
                p("200.0.0.0/8")
            ]
        );
    }

    #[test]
    fn iter_subtree_scopes_to_prefix() {
        let mut t = Trie::new();
        t.insert(p("10.0.0.0/8"), 1);
        t.insert(p("10.1.0.0/16"), 2);
        t.insert(p("11.0.0.0/8"), 3);
        let got: Vec<Prefix> = t.iter_subtree(p("10.0.0.0/8")).map(|(px, _)| px).collect();
        // 10.1.0.0/16 sits in the 0-subtree of 10.0.0.0/8, so in-order
        // emits it before its ancestor.
        assert_eq!(got, vec![p("10.1.0.0/16"), p("10.0.0.0/8")]);
        assert_eq!(t.iter_subtree(p("12.0.0.0/8")).count(), 0);
    }

    #[test]
    fn route_counts_track_subtree_values() {
        let mut t = Trie::new();
        t.insert(p("10.0.0.0/8"), 1);
        t.insert(p("10.1.0.0/16"), 2);
        t.insert(p("10.1.2.0/24"), 3);
        let n = t.node(p("10.0.0.0/8")).unwrap();
        assert_eq!(n.route_count(), 3);
        assert_eq!(n.descendant_routes(), 2);
        t.remove(p("10.1.2.0/24"));
        let n = t.node(p("10.0.0.0/8")).unwrap();
        assert_eq!(n.route_count(), 2);
    }

    #[test]
    fn node_ref_children_and_leaf() {
        let mut t = Trie::new();
        t.insert(p("128.0.0.0/1"), 1);
        let root = t.root();
        assert!(root.child(Bit::Zero).is_none());
        let one = root.child(Bit::One).unwrap();
        assert_eq!(one.prefix(), p("128.0.0.0/1"));
        assert!(one.is_leaf());
        assert_eq!(one.value(), Some(&1));
    }

    #[test]
    fn from_iterator_and_extend() {
        let pairs = vec![(p("10.0.0.0/8"), 1), (p("11.0.0.0/8"), 2)];
        let mut t: Trie<i32> = pairs.into_iter().collect();
        assert_eq!(t.len(), 2);
        t.extend(vec![(p("12.0.0.0/8"), 3)]);
        assert_eq!(t.len(), 3);
    }

    #[test]
    fn clear_resets_everything() {
        let mut t = Trie::new();
        t.insert(p("10.0.0.0/8"), 1);
        t.clear();
        assert!(t.is_empty());
        assert_eq!(t.node_count(), 1);
        assert_eq!(t.lookup(0x0A00_0000), None);
    }

    #[test]
    fn lpm_node_exposes_structure() {
        let mut t = Trie::new();
        t.insert(p("10.0.0.0/8"), 1);
        t.insert(p("10.0.0.0/10"), 2);
        let n = t.lpm_node(0x0A80_0000).unwrap(); // 10.128.. → /8 is LPM
        assert_eq!(n.prefix(), p("10.0.0.0/8"));
        assert_eq!(n.descendant_routes(), 1);
    }
}
