//! IPv4 prefixes and next hops.
//!
//! A [`Prefix`] is the fundamental unit of a routing table: the first
//! `len` bits of a 32-bit IPv4 address. Prefixes form a binary trie; most
//! of the algorithms in this workspace are phrased in terms of the
//! parent/child/sibling relations defined here.

use core::cmp::Ordering;
use core::fmt;
use core::str::FromStr;

/// Maximum prefix length of an IPv4 prefix.
pub const MAX_LEN: u8 = 32;

/// A forwarding action: the index of the next-hop port/adjacency.
///
/// Backbone FIBs map each prefix to one of a few dozen next hops; the
/// compression algorithms in [`clue-compress`](../../compress) exploit how
/// few distinct values there are.
///
/// # Examples
///
/// ```
/// use clue_fib::NextHop;
/// let nh = NextHop(3);
/// assert_eq!(nh.to_string(), "nh3");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct NextHop(pub u16);

impl fmt::Display for NextHop {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "nh{}", self.0)
    }
}

impl From<u16> for NextHop {
    fn from(v: u16) -> Self {
        NextHop(v)
    }
}

/// One of the two children of a trie node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Bit {
    /// The 0 branch (lower half of the address range).
    Zero = 0,
    /// The 1 branch (upper half of the address range).
    One = 1,
}

impl Bit {
    /// The opposite branch.
    #[must_use]
    pub fn flip(self) -> Bit {
        match self {
            Bit::Zero => Bit::One,
            Bit::One => Bit::Zero,
        }
    }

    /// Index (0 or 1) for array-based child storage.
    #[must_use]
    pub fn index(self) -> usize {
        self as usize
    }
}

/// An IPv4 prefix: the leading `len` bits of `bits`.
///
/// Invariant: all bits below the top `len` are zero. The constructor masks
/// its input, so the invariant always holds.
///
/// The derived-equivalent ordering is lexicographic on `(bits, len)`. For a
/// **non-overlapping** set of prefixes this coincides with the order of the
/// address ranges they cover, which is what CLUE's even-range partitioning
/// relies on.
///
/// # Examples
///
/// ```
/// use clue_fib::Prefix;
/// let p: Prefix = "10.0.0.0/8".parse()?;
/// assert!(p.contains_addr(0x0A01_0203));
/// assert_eq!(p.to_string(), "10.0.0.0/8");
/// # Ok::<(), clue_fib::ParsePrefixError>(())
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct Prefix {
    bits: u32,
    len: u8,
}

impl Prefix {
    /// Creates a prefix from a (possibly unmasked) address and a length.
    ///
    /// Bits beyond `len` are cleared.
    ///
    /// # Panics
    ///
    /// Panics if `len > 32`.
    #[must_use]
    pub fn new(bits: u32, len: u8) -> Self {
        assert!(len <= MAX_LEN, "prefix length {len} exceeds 32");
        Prefix {
            bits: bits & mask(len),
            len,
        }
    }

    /// The zero-length prefix covering the whole address space.
    #[must_use]
    pub fn root() -> Self {
        Prefix { bits: 0, len: 0 }
    }

    /// The network bits, left-aligned in a `u32`.
    #[must_use]
    pub fn bits(self) -> u32 {
        self.bits
    }

    /// The prefix length in bits.
    ///
    /// (`is_empty` is deliberately absent: a zero-length prefix is the
    /// default route, not an "empty" prefix.)
    #[allow(clippy::len_without_is_empty)]
    #[must_use]
    pub fn len(self) -> u8 {
        self.len
    }

    /// Whether this is the root (length-0) prefix.
    #[must_use]
    pub fn is_root(self) -> bool {
        self.len == 0
    }

    /// Whether this is a full host route (/32).
    #[must_use]
    pub fn is_host(self) -> bool {
        self.len == MAX_LEN
    }

    /// Lowest address covered by the prefix.
    #[must_use]
    pub fn low(self) -> u32 {
        self.bits
    }

    /// Highest address covered by the prefix.
    #[must_use]
    pub fn high(self) -> u32 {
        self.bits | !mask(self.len)
    }

    /// Whether `addr` falls inside this prefix.
    #[must_use]
    pub fn contains_addr(self, addr: u32) -> bool {
        (addr & mask(self.len)) == self.bits
    }

    /// Whether `other` is equal to or more specific than `self`.
    #[must_use]
    pub fn contains(self, other: Prefix) -> bool {
        other.len >= self.len && (other.bits & mask(self.len)) == self.bits
    }

    /// Whether the two prefixes overlap (one contains the other).
    #[must_use]
    pub fn overlaps(self, other: Prefix) -> bool {
        self.contains(other) || other.contains(self)
    }

    /// The immediate parent, or `None` for the root.
    #[must_use]
    pub fn parent(self) -> Option<Prefix> {
        if self.len == 0 {
            None
        } else {
            Some(Prefix::new(self.bits, self.len - 1))
        }
    }

    /// The child on branch `bit`, or `None` if already a /32.
    #[must_use]
    pub fn child(self, bit: Bit) -> Option<Prefix> {
        if self.len >= MAX_LEN {
            return None;
        }
        let len = self.len + 1;
        let bits = match bit {
            Bit::Zero => self.bits,
            Bit::One => self.bits | (1u32 << (32 - len)),
        };
        Some(Prefix { bits, len })
    }

    /// The sibling under the same parent, or `None` for the root.
    #[must_use]
    pub fn sibling(self) -> Option<Prefix> {
        if self.len == 0 {
            None
        } else {
            Some(Prefix {
                bits: self.bits ^ (1u32 << (32 - self.len)),
                len: self.len,
            })
        }
    }

    /// Which branch this prefix takes under its parent, or `None` for root.
    #[must_use]
    pub fn branch(self) -> Option<Bit> {
        if self.len == 0 {
            None
        } else if self.bits & (1u32 << (32 - self.len)) == 0 {
            Some(Bit::Zero)
        } else {
            Some(Bit::One)
        }
    }

    /// The value of bit `depth` (0-based from the top) of `addr` as a [`Bit`].
    ///
    /// This is the branch an address takes when descending from a node at
    /// depth `depth` in the trie.
    ///
    /// # Panics
    ///
    /// Panics if `depth >= 32`.
    #[must_use]
    pub fn addr_bit(addr: u32, depth: u8) -> Bit {
        assert!(depth < MAX_LEN);
        if addr & (1u32 << (31 - depth)) == 0 {
            Bit::Zero
        } else {
            Bit::One
        }
    }

    /// Truncates the prefix to `len` bits.
    ///
    /// # Panics
    ///
    /// Panics if `len > self.len()`.
    #[must_use]
    pub fn truncate(self, len: u8) -> Prefix {
        assert!(len <= self.len, "cannot truncate /{} to /{len}", self.len);
        Prefix::new(self.bits, len)
    }

    /// Number of addresses covered: `2^(32-len)`.
    #[must_use]
    pub fn size(self) -> u64 {
        1u64 << (32 - u32::from(self.len))
    }

    /// The dotted-quad form of the network address.
    #[must_use]
    pub fn octets(self) -> [u8; 4] {
        self.bits.to_be_bytes()
    }
}

impl Default for Prefix {
    fn default() -> Self {
        Prefix::root()
    }
}

impl PartialOrd for Prefix {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Prefix {
    fn cmp(&self, other: &Self) -> Ordering {
        self.bits
            .cmp(&other.bits)
            .then_with(|| self.len.cmp(&other.len))
    }
}

impl fmt::Display for Prefix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let o = self.octets();
        write!(f, "{}.{}.{}.{}/{}", o[0], o[1], o[2], o[3], self.len)
    }
}

impl fmt::Debug for Prefix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Prefix({self})")
    }
}

/// Error returned when parsing a [`Prefix`] from text fails.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParsePrefixError {
    input: String,
}

impl ParsePrefixError {
    fn new(input: &str) -> Self {
        ParsePrefixError {
            input: input.to_owned(),
        }
    }
}

impl fmt::Display for ParsePrefixError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid prefix syntax: {:?}", self.input)
    }
}

impl std::error::Error for ParsePrefixError {}

impl FromStr for Prefix {
    type Err = ParsePrefixError;

    /// Parses `a.b.c.d/len` notation.
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let err = || ParsePrefixError::new(s);
        let (addr, len) = s.split_once('/').ok_or_else(err)?;
        let len: u8 = len.parse().map_err(|_| err())?;
        if len > MAX_LEN {
            return Err(err());
        }
        let mut bits: u32 = 0;
        let mut count = 0;
        for part in addr.split('.') {
            let octet: u8 = part.parse().map_err(|_| err())?;
            bits = (bits << 8) | u32::from(octet);
            count += 1;
        }
        if count != 4 {
            return Err(err());
        }
        Ok(Prefix::new(bits, len))
    }
}

/// Bit mask with the top `len` bits set.
#[inline]
#[must_use]
pub fn mask(len: u8) -> u32 {
    debug_assert!(len <= MAX_LEN);
    if len == 0 {
        0
    } else {
        u32::MAX << (32 - u32::from(len))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_masks_trailing_bits() {
        let p = Prefix::new(0xFFFF_FFFF, 8);
        assert_eq!(p.bits(), 0xFF00_0000);
        assert_eq!(p.len(), 8);
    }

    #[test]
    #[should_panic(expected = "exceeds 32")]
    fn new_rejects_len_over_32() {
        let _ = Prefix::new(0, 33);
    }

    #[test]
    fn root_covers_everything() {
        let r = Prefix::root();
        assert!(r.is_root());
        assert!(r.contains_addr(0));
        assert!(r.contains_addr(u32::MAX));
        assert_eq!(r.size(), 1 << 32);
    }

    #[test]
    fn display_and_parse_round_trip() {
        for s in ["0.0.0.0/0", "10.0.0.0/8", "192.168.1.128/25", "1.2.3.4/32"] {
            let p: Prefix = s.parse().unwrap();
            assert_eq!(p.to_string(), s);
        }
    }

    #[test]
    fn parse_masks_host_bits() {
        let p: Prefix = "10.1.2.3/8".parse().unwrap();
        assert_eq!(p.to_string(), "10.0.0.0/8");
    }

    #[test]
    fn parse_rejects_garbage() {
        for s in [
            "",
            "10.0.0.0",
            "10.0.0.0/33",
            "10.0.0/8",
            "a.b.c.d/8",
            "10.0.0.0.0/8",
        ] {
            assert!(s.parse::<Prefix>().is_err(), "{s} should not parse");
        }
    }

    #[test]
    fn parent_child_inverse() {
        let p: Prefix = "192.168.0.0/16".parse().unwrap();
        let l = p.child(Bit::Zero).unwrap();
        let r = p.child(Bit::One).unwrap();
        assert_eq!(l.parent(), Some(p));
        assert_eq!(r.parent(), Some(p));
        assert_eq!(l.sibling(), Some(r));
        assert_eq!(r.sibling(), Some(l));
        assert_eq!(l.branch(), Some(Bit::Zero));
        assert_eq!(r.branch(), Some(Bit::One));
    }

    #[test]
    fn host_prefix_has_no_children() {
        let p: Prefix = "1.2.3.4/32".parse().unwrap();
        assert!(p.child(Bit::Zero).is_none());
        assert!(p.child(Bit::One).is_none());
        assert!(p.is_host());
    }

    #[test]
    fn containment_is_reflexive_and_directional() {
        let a: Prefix = "10.0.0.0/8".parse().unwrap();
        let b: Prefix = "10.1.0.0/16".parse().unwrap();
        let c: Prefix = "11.0.0.0/8".parse().unwrap();
        assert!(a.contains(a));
        assert!(a.contains(b));
        assert!(!b.contains(a));
        assert!(!a.contains(c));
        assert!(a.overlaps(b));
        assert!(b.overlaps(a));
        assert!(!a.overlaps(c));
    }

    #[test]
    fn range_bounds() {
        let p: Prefix = "10.0.0.0/8".parse().unwrap();
        assert_eq!(p.low(), 0x0A00_0000);
        assert_eq!(p.high(), 0x0AFF_FFFF);
        assert!(p.contains_addr(p.low()));
        assert!(p.contains_addr(p.high()));
        assert!(!p.contains_addr(p.high().wrapping_add(1)));
    }

    #[test]
    fn ordering_matches_ranges_for_disjoint_prefixes() {
        let a: Prefix = "10.0.0.0/8".parse().unwrap();
        let b: Prefix = "11.0.0.0/16".parse().unwrap();
        let c: Prefix = "12.0.0.0/7".parse().unwrap();
        let mut v = vec![c, b, a];
        v.sort();
        assert_eq!(v, vec![a, b, c]);
        assert!(v[0].high() < v[1].low());
        assert!(v[1].high() < v[2].low());
    }

    #[test]
    fn addr_bit_walks_msb_first() {
        let addr = 0b1010_0000_0000_0000_0000_0000_0000_0000u32;
        assert_eq!(Prefix::addr_bit(addr, 0), Bit::One);
        assert_eq!(Prefix::addr_bit(addr, 1), Bit::Zero);
        assert_eq!(Prefix::addr_bit(addr, 2), Bit::One);
        assert_eq!(Prefix::addr_bit(addr, 3), Bit::Zero);
    }

    #[test]
    fn truncate_gives_ancestor() {
        let p: Prefix = "10.1.2.0/24".parse().unwrap();
        let t = p.truncate(8);
        assert_eq!(t.to_string(), "10.0.0.0/8");
        assert!(t.contains(p));
    }

    #[test]
    fn mask_edges() {
        assert_eq!(mask(0), 0);
        assert_eq!(mask(1), 0x8000_0000);
        assert_eq!(mask(32), u32::MAX);
    }
}
