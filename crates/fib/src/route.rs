//! Routing tables and update messages.

use std::collections::BTreeMap;
use std::fmt;
use std::str::FromStr;

use crate::prefix::{NextHop, ParsePrefixError, Prefix};
use crate::trie::Trie;

/// One FIB entry: a prefix and its forwarding action.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Route {
    /// Destination prefix.
    pub prefix: Prefix,
    /// Forwarding action.
    pub next_hop: NextHop,
}

impl Route {
    /// Creates a route.
    #[must_use]
    pub fn new(prefix: Prefix, next_hop: NextHop) -> Self {
        Route { prefix, next_hop }
    }
}

impl fmt::Display for Route {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {}", self.prefix, self.next_hop.0)
    }
}

/// A routing table: an ordered map from prefix to next hop.
///
/// The map is keyed by the `(bits, len)` order of [`Prefix`], so iteration
/// is deterministic and, for non-overlapping tables, follows ascending
/// address ranges.
///
/// # Examples
///
/// ```
/// use clue_fib::{NextHop, RouteTable};
///
/// let mut fib = RouteTable::new();
/// fib.insert("10.0.0.0/8".parse()?, NextHop(1));
/// fib.insert("10.1.0.0/16".parse()?, NextHop(2));
/// assert_eq!(fib.len(), 2);
///
/// let trie = fib.to_trie();
/// assert_eq!(trie.lookup(0x0A01_0000).map(|(_, nh)| *nh), Some(NextHop(2)));
/// # Ok::<(), clue_fib::ParsePrefixError>(())
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RouteTable {
    map: BTreeMap<Prefix, NextHop>,
}

impl RouteTable {
    /// Creates an empty table.
    #[must_use]
    pub fn new() -> Self {
        RouteTable::default()
    }

    /// Number of routes.
    #[must_use]
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether the table is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Inserts a route, returning the previous next hop for the prefix.
    pub fn insert(&mut self, prefix: Prefix, next_hop: NextHop) -> Option<NextHop> {
        self.map.insert(prefix, next_hop)
    }

    /// Removes the route for `prefix`, returning its next hop.
    pub fn remove(&mut self, prefix: Prefix) -> Option<NextHop> {
        self.map.remove(&prefix)
    }

    /// The next hop stored for exactly `prefix`.
    #[must_use]
    pub fn get(&self, prefix: Prefix) -> Option<NextHop> {
        self.map.get(&prefix).copied()
    }

    /// Whether the table stores a route for exactly `prefix`.
    #[must_use]
    pub fn contains(&self, prefix: Prefix) -> bool {
        self.map.contains_key(&prefix)
    }

    /// Iterates routes in `(bits, len)` order.
    pub fn iter(&self) -> impl Iterator<Item = Route> + '_ {
        self.map.iter().map(|(&p, &nh)| Route::new(p, nh))
    }

    /// Applies an update message to the table.
    pub fn apply(&mut self, update: Update) {
        match update {
            Update::Announce { prefix, next_hop } => {
                self.insert(prefix, next_hop);
            }
            Update::Withdraw { prefix } => {
                self.remove(prefix);
            }
        }
    }

    /// Builds the trie representation of the table.
    #[must_use]
    pub fn to_trie(&self) -> Trie<NextHop> {
        self.map.iter().map(|(&p, &nh)| (p, nh)).collect()
    }

    /// Collects the table from a trie.
    #[must_use]
    pub fn from_trie(trie: &Trie<NextHop>) -> Self {
        trie.iter().map(|(p, &nh)| (p, nh)).collect()
    }

    /// Whether no route in the table contains another.
    ///
    /// Non-overlap is the property ONRTC establishes; every CLUE-specific
    /// TCAM optimization (no priority encoder, O(1) update, even
    /// partitioning) depends on it.
    #[must_use]
    pub fn is_non_overlapping(&self) -> bool {
        // A containing prefix always sorts before the prefixes it
        // contains, and prefix ranges are laminar (nest or are disjoint),
        // so a route overlaps an earlier one exactly when it starts at or
        // below the largest range end seen so far.
        let mut max_high: Option<u32> = None;
        for &p in self.map.keys() {
            if let Some(h) = max_high {
                if p.low() <= h {
                    return false;
                }
            }
            max_high = Some(max_high.unwrap_or(0).max(p.high()));
        }
        true
    }

    /// Set of distinct next hops used by the table.
    #[must_use]
    pub fn next_hops(&self) -> Vec<NextHop> {
        let mut v: Vec<NextHop> = self.map.values().copied().collect();
        v.sort_unstable();
        v.dedup();
        v
    }

    /// Serializes to the text format `a.b.c.d/len nh`, one route per line.
    #[must_use]
    pub fn to_text(&self) -> String {
        let mut s = String::new();
        for r in self.iter() {
            s.push_str(&r.to_string());
            s.push('\n');
        }
        s
    }

    /// Parses the text format produced by [`RouteTable::to_text`].
    ///
    /// # Errors
    ///
    /// Returns [`ParseRouteError`] for malformed lines. Blank lines and
    /// lines starting with `#` are skipped.
    pub fn from_text(text: &str) -> Result<Self, ParseRouteError> {
        let mut table = RouteTable::new();
        for (lineno, line) in text.lines().enumerate() {
            let line = line.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let route: Route = line
                .parse()
                .map_err(|_| ParseRouteError { line: lineno + 1 })?;
            table.insert(route.prefix, route.next_hop);
        }
        Ok(table)
    }
}

impl FromIterator<(Prefix, NextHop)> for RouteTable {
    fn from_iter<I: IntoIterator<Item = (Prefix, NextHop)>>(iter: I) -> Self {
        RouteTable {
            map: iter.into_iter().collect(),
        }
    }
}

impl FromIterator<Route> for RouteTable {
    fn from_iter<I: IntoIterator<Item = Route>>(iter: I) -> Self {
        iter.into_iter().map(|r| (r.prefix, r.next_hop)).collect()
    }
}

impl Extend<Route> for RouteTable {
    fn extend<I: IntoIterator<Item = Route>>(&mut self, iter: I) {
        for r in iter {
            self.insert(r.prefix, r.next_hop);
        }
    }
}

impl FromStr for Route {
    type Err = ParsePrefixError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let mut parts = s.split_whitespace();
        let bad = || "".parse::<Prefix>().unwrap_err();
        let prefix: Prefix = parts.next().ok_or_else(bad)?.parse()?;
        let nh: u16 = parts.next().ok_or_else(bad)?.parse().map_err(|_| bad())?;
        if parts.next().is_some() {
            return Err(bad());
        }
        Ok(Route::new(prefix, NextHop(nh)))
    }
}

/// Error returned when parsing a [`RouteTable`] from text fails.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseRouteError {
    line: usize,
}

impl ParseRouteError {
    /// 1-based line number of the malformed line.
    #[must_use]
    pub fn line(&self) -> usize {
        self.line
    }
}

impl fmt::Display for ParseRouteError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid route syntax on line {}", self.line)
    }
}

impl std::error::Error for ParseRouteError {}

/// A BGP-like incremental update message.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Update {
    /// A route announcement (insert or next-hop change).
    Announce {
        /// Destination prefix.
        prefix: Prefix,
        /// New forwarding action.
        next_hop: NextHop,
    },
    /// A route withdrawal.
    Withdraw {
        /// Destination prefix.
        prefix: Prefix,
    },
}

impl Update {
    /// The prefix the update refers to.
    #[must_use]
    pub fn prefix(&self) -> Prefix {
        match *self {
            Update::Announce { prefix, .. } | Update::Withdraw { prefix } => prefix,
        }
    }

    /// Whether this is an announcement.
    #[must_use]
    pub fn is_announce(&self) -> bool {
        matches!(self, Update::Announce { .. })
    }
}

impl fmt::Display for Update {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            Update::Announce { prefix, next_hop } => write!(f, "A {prefix} {}", next_hop.0),
            Update::Withdraw { prefix } => write!(f, "W {prefix}"),
        }
    }
}

impl FromStr for Update {
    type Err = ParsePrefixError;

    /// Parses the format produced by `Display`: `A <prefix> <nh>` or
    /// `W <prefix>`.
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let bad = || "".parse::<Prefix>().unwrap_err();
        let mut parts = s.split_whitespace();
        let kind = parts.next().ok_or_else(bad)?;
        let prefix: Prefix = parts.next().ok_or_else(bad)?.parse()?;
        let update = match kind {
            "A" => {
                let nh: u16 = parts.next().ok_or_else(bad)?.parse().map_err(|_| bad())?;
                Update::Announce {
                    prefix,
                    next_hop: NextHop(nh),
                }
            }
            "W" => Update::Withdraw { prefix },
            _ => return Err(bad()),
        };
        if parts.next().is_some() {
            return Err(bad());
        }
        Ok(update)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(s: &str) -> Prefix {
        s.parse().unwrap()
    }

    #[test]
    fn insert_replaces_and_reports_previous() {
        let mut t = RouteTable::new();
        assert_eq!(t.insert(p("10.0.0.0/8"), NextHop(1)), None);
        assert_eq!(t.insert(p("10.0.0.0/8"), NextHop(2)), Some(NextHop(1)));
        assert_eq!(t.get(p("10.0.0.0/8")), Some(NextHop(2)));
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn text_round_trip() {
        let mut t = RouteTable::new();
        t.insert(p("10.0.0.0/8"), NextHop(1));
        t.insert(p("192.168.1.0/24"), NextHop(42));
        let text = t.to_text();
        let back = RouteTable::from_text(&text).unwrap();
        assert_eq!(t, back);
    }

    #[test]
    fn from_text_skips_comments_and_reports_bad_lines() {
        let table = RouteTable::from_text("# comment\n\n10.0.0.0/8 1\n").unwrap();
        assert_eq!(table.len(), 1);
        let err = RouteTable::from_text("10.0.0.0/8 1\nnot a route\n").unwrap_err();
        assert_eq!(err.line(), 2);
    }

    #[test]
    fn route_parse_rejects_trailing_tokens() {
        assert!("10.0.0.0/8 1 extra".parse::<Route>().is_err());
        assert!("10.0.0.0/8".parse::<Route>().is_err());
    }

    #[test]
    fn apply_announce_and_withdraw() {
        let mut t = RouteTable::new();
        t.apply(Update::Announce {
            prefix: p("10.0.0.0/8"),
            next_hop: NextHop(1),
        });
        assert_eq!(t.len(), 1);
        t.apply(Update::Withdraw {
            prefix: p("10.0.0.0/8"),
        });
        assert!(t.is_empty());
    }

    #[test]
    fn non_overlap_detection() {
        let mut t = RouteTable::new();
        t.insert(p("10.0.0.0/8"), NextHop(1));
        t.insert(p("11.0.0.0/8"), NextHop(2));
        assert!(t.is_non_overlapping());
        t.insert(p("10.1.0.0/16"), NextHop(3));
        assert!(!t.is_non_overlapping());
    }

    #[test]
    fn non_overlap_detects_distant_nesting() {
        // The containing prefix is not the immediate predecessor in sort
        // order: 10.0.0.0/8 < 10.0.0.0/9 < 10.64.0.0/10, and /8 ⊃ /10.
        let mut t = RouteTable::new();
        t.insert(p("10.0.0.0/8"), NextHop(1));
        t.insert(p("10.0.0.0/9"), NextHop(2));
        t.insert(p("10.64.0.0/10"), NextHop(3));
        assert!(!t.is_non_overlapping());
    }

    #[test]
    fn next_hops_dedups() {
        let mut t = RouteTable::new();
        t.insert(p("10.0.0.0/8"), NextHop(1));
        t.insert(p("11.0.0.0/8"), NextHop(1));
        t.insert(p("12.0.0.0/8"), NextHop(2));
        assert_eq!(t.next_hops(), vec![NextHop(1), NextHop(2)]);
    }

    #[test]
    fn to_trie_preserves_lookup_semantics() {
        let mut t = RouteTable::new();
        t.insert(p("10.0.0.0/8"), NextHop(1));
        t.insert(p("10.1.0.0/16"), NextHop(2));
        let trie = t.to_trie();
        assert_eq!(trie.lookup(0x0A01_0000).map(|(_, v)| *v), Some(NextHop(2)));
        assert_eq!(trie.lookup(0x0A02_0000).map(|(_, v)| *v), Some(NextHop(1)));
        assert_eq!(RouteTable::from_trie(&trie), t);
    }

    #[test]
    fn update_parse_round_trip() {
        for s in ["A 10.0.0.0/8 5", "W 192.168.0.0/16"] {
            let u: Update = s.parse().unwrap();
            assert_eq!(u.to_string(), s);
        }
        for bad in [
            "",
            "X 10.0.0.0/8",
            "A 10.0.0.0/8",
            "W 10.0.0.0/8 5",
            "A nope 5",
        ] {
            assert!(bad.parse::<Update>().is_err(), "{bad:?} should not parse");
        }
    }

    #[test]
    fn update_accessors() {
        let a = Update::Announce {
            prefix: p("10.0.0.0/8"),
            next_hop: NextHop(1),
        };
        let w = Update::Withdraw {
            prefix: p("10.0.0.0/8"),
        };
        assert!(a.is_announce());
        assert!(!w.is_announce());
        assert_eq!(a.prefix(), w.prefix());
        assert_eq!(a.to_string(), "A 10.0.0.0/8 1");
        assert_eq!(w.to_string(), "W 10.0.0.0/8");
    }
}
