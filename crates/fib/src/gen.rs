//! Synthetic FIB generation.
//!
//! The paper evaluates on 12 real BGP RIBs downloaded from RIPE RIS
//! (2011-10-01). Those RIBs are not redistributable, so this module
//! generates *structurally equivalent* tables: the properties that drive
//! every experiment — prefix-length histogram (mode at /24), a small set
//! of next hops, spatial next-hop correlation between neighbouring
//! prefixes, and nested more-specifics — are all reproduced and seeded,
//! so every run of the benchmarks sees the same tables.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::prefix::{NextHop, Prefix};
use crate::route::RouteTable;

/// Configuration for the synthetic FIB generator.
///
/// # Examples
///
/// ```
/// use clue_fib::gen::FibGen;
///
/// let fib = FibGen::new(42).routes(10_000).generate();
/// assert!(fib.len() >= 10_000);
/// ```
#[derive(Debug, Clone)]
pub struct FibGen {
    seed: u64,
    routes: usize,
    next_hops: u16,
    locality: f64,
    aggregate_rate: f64,
    deep_rate: f64,
    legacy_blocks: Option<usize>,
}

impl FibGen {
    /// Creates a generator with the given seed and calibrated defaults.
    ///
    /// The defaults are tuned so that ONRTC compresses the generated
    /// tables to roughly the paper's 71 % (see the calibration test in
    /// `clue-compress`).
    #[must_use]
    pub fn new(seed: u64) -> Self {
        FibGen {
            seed,
            routes: 100_000,
            next_hops: 24,
            locality: 0.915,
            aggregate_rate: 0.47,
            deep_rate: 0.017,
            legacy_blocks: None,
        }
    }

    /// Target number of routes (the generator may slightly overshoot while
    /// finishing an allocation block).
    #[must_use]
    pub fn routes(mut self, routes: usize) -> Self {
        self.routes = routes;
        self
    }

    /// Number of distinct next hops (backbone routers have a few dozen).
    #[must_use]
    pub fn next_hops(mut self, next_hops: u16) -> Self {
        assert!(next_hops > 0, "need at least one next hop");
        self.next_hops = next_hops;
        self
    }

    /// Probability that a sub-route inherits its allocation's next hop.
    ///
    /// Higher locality means more mergeable siblings and therefore better
    /// compression.
    #[must_use]
    pub fn locality(mut self, locality: f64) -> Self {
        assert!((0.0..=1.0).contains(&locality));
        self.locality = locality;
        self
    }

    /// Probability that an allocation also announces its covering
    /// aggregate (creates ancestor/descendant overlap).
    #[must_use]
    pub fn aggregate_rate(mut self, rate: f64) -> Self {
        assert!((0.0..=1.0).contains(&rate));
        self.aggregate_rate = rate;
        self
    }

    /// Probability of adding a deep more-specific (/25–/32) inside a
    /// sub-route (rare in real tables).
    #[must_use]
    pub fn deep_rate(mut self, rate: f64) -> Self {
        assert!((0.0..=1.0).contains(&rate));
        self.deep_rate = rate;
        self
    }

    /// Number of legacy class-A/B-scale covering blocks (/8–/10).
    ///
    /// Defaults to roughly one per 3 000 routes — the handful of legacy
    /// announcements real tables carry. These are what give sub-tree
    /// partitioning its covering-prefix redundancy.
    #[must_use]
    pub fn legacy_blocks(mut self, blocks: usize) -> Self {
        self.legacy_blocks = Some(blocks);
        self
    }

    /// Generates the table.
    #[must_use]
    pub fn generate(&self) -> RouteTable {
        let mut rng = StdRng::seed_from_u64(self.seed);
        let mut table = RouteTable::new();

        // Dense registry regions: real address-space usage is lumpy —
        // most announcements cluster in a few heavily-assigned /6-scale
        // areas. This lumpiness is what makes bit-selection (SLPL) split
        // unevenly on real tables. The pool grows with the target: eight
        // /6-scale regions hold only ~2 M distinct /24s between them, so
        // a fixed pool saturates near the 2011 table sizes and
        // multi-million targets degenerate into duplicate churn.
        let region_count = (self.routes / 45_000).max(8);
        let regions: Vec<Prefix> = (0..region_count)
            .map(|_| {
                let addr = rng.random_range(0x0100_0000u32..0xDF00_0000u32);
                Prefix::new(addr, rng.random_range(5..=7u8))
            })
            .collect();

        // Legacy covering blocks: always announced, owners' interiors
        // correlate with them (real class-A space behaves this way).
        // Capped: the /8–/10 unicast space only holds a couple hundred
        // disjoint blocks, and the rejection sampling below must keep
        // finding free ones at any table scale.
        let legacy_count = self.legacy_blocks.unwrap_or(self.routes / 3_000).min(120);
        let mut legacy: Vec<(Prefix, NextHop)> = Vec::with_capacity(legacy_count);
        while legacy.len() < legacy_count {
            let len = rng.random_range(8..=10u8);
            let addr = rng.random_range(0x0100_0000u32..0xDF00_0000u32);
            let block = Prefix::new(addr, len);
            if legacy.iter().any(|&(p, _)| p.overlaps(block)) {
                continue;
            }
            let nh = NextHop(rng.random_range(0..self.next_hops));
            table.insert(block, nh);
            legacy.push((block, nh));
        }

        while table.len() < self.routes {
            self.emit_allocation(&mut rng, &mut table, &legacy, &regions);
        }
        table
    }

    /// Emits one "allocation": a covering block carved into sub-routes
    /// with correlated next hops, mimicking how registries hand out
    /// address space that providers then de-aggregate.
    fn emit_allocation(
        &self,
        rng: &mut StdRng,
        table: &mut RouteTable,
        legacy: &[(Prefix, NextHop)],
        regions: &[Prefix],
    ) {
        // Allocation sizes: /12–/18, weighted toward /16.
        const ALLOC_LENS: [(u8, u32); 7] = [
            (12, 4),
            (13, 6),
            (14, 10),
            (15, 14),
            (16, 34),
            (17, 14),
            (18, 18),
        ];
        let alloc_len = weighted(rng, &ALLOC_LENS);
        // A quarter of allocations land inside legacy space (heavily
        // de-aggregated in real tables), half cluster in the dense
        // registry regions, and the rest are uniform over unicast-ish
        // space (avoiding 0/8 and ≥224/8).
        let roll: f64 = rng.random();
        let addr = if !legacy.is_empty() && roll < 0.25 {
            let &(block, _) = &legacy[rng.random_range(0..legacy.len())];
            block.low() + (rng.random_range(0..block.size()) as u32)
        } else if !regions.is_empty() && roll < 0.75 {
            let region = regions[rng.random_range(0..regions.len())];
            region.low() + (rng.random_range(0..region.size()) as u32)
        } else {
            rng.random_range(0x0100_0000u32..0xDF00_0000u32)
        };
        let alloc = Prefix::new(addr, alloc_len);
        // Allocations inside a legacy block usually keep its next hop
        // (same owner), which keeps the covering overlap compressible.
        let covering = legacy.iter().find(|&&(p, _)| p.contains(alloc));
        let base_nh = match covering {
            Some(&(_, nh)) if rng.random_bool(0.85) => nh,
            _ => NextHop(rng.random_range(0..self.next_hops)),
        };

        if rng.random_bool(self.aggregate_rate) {
            table.insert(alloc, base_nh);
        }
        let locality = self.locality;
        let deep_rate = self.deep_rate;

        // Sub-route lengths: weighted toward /24, never shorter than the
        // allocation plus one bit.
        const SUB_LENS: [(u8, u32); 6] = [(19, 5), (20, 7), (21, 8), (22, 11), (23, 10), (24, 59)];
        let sub_len = weighted(rng, &SUB_LENS).max(alloc_len + 1);

        // A run of consecutive sibling blocks starting at a random aligned
        // offset inside the allocation. Runs of neighbours sharing a next
        // hop are exactly what makes real tables compressible.
        let blocks_in_alloc = 1u32 << (sub_len - alloc_len);
        let run = rng.random_range(1..=16u32).min(blocks_in_alloc);
        let start = rng.random_range(0..=blocks_in_alloc - run);
        let step = 1u32 << (32 - sub_len);
        for i in 0..run {
            let bits = alloc.bits() + (start + i) * step;
            let nh = if rng.random_bool(locality) {
                base_nh
            } else {
                NextHop(rng.random_range(0..self.next_hops))
            };
            let sub = Prefix::new(bits, sub_len);
            table.insert(sub, nh);

            if sub_len < 32 && rng.random_bool(deep_rate) {
                let deep_len = rng.random_range(sub_len + 1..=32.min(sub_len + 8));
                let offset = rng.random_range(0..sub.size()) as u32;
                let deep = Prefix::new(bits | offset, deep_len);
                let deep_nh = NextHop(rng.random_range(0..self.next_hops));
                table.insert(deep, deep_nh);
            }
        }
    }
}

fn weighted(rng: &mut StdRng, choices: &[(u8, u32)]) -> u8 {
    let total: u32 = choices.iter().map(|&(_, w)| w).sum();
    let mut pick = rng.random_range(0..total);
    for &(v, w) in choices {
        if pick < w {
            return v;
        }
        pick -= w;
    }
    unreachable!("weights sum covered the range")
}

/// Description of one synthetic "router" in the evaluation catalog.
///
/// Stands in for the 12 RIPE RIS collectors in Table I of the paper.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RouterSpec {
    /// Collector name, e.g. `rrc01`.
    pub name: &'static str,
    /// Collector location (as in Table I).
    pub location: &'static str,
    /// Route count for the synthetic RIB.
    pub routes: usize,
    /// Generator seed.
    pub seed: u64,
}

impl RouterSpec {
    /// Generates the synthetic RIB for this router, scaled by `scale`
    /// (use `1.0` for the full-size table, smaller for quick runs).
    ///
    /// # Panics
    ///
    /// Panics if `scale` is not finite and positive.
    #[must_use]
    pub fn generate(&self, scale: f64) -> RouteTable {
        assert!(scale.is_finite() && scale > 0.0, "scale must be positive");
        let routes = ((self.routes as f64 * scale) as usize).max(16);
        FibGen::new(self.seed).routes(routes).generate()
    }
}

/// The 12-router catalog mirroring Table I of the paper.
///
/// Sizes are in the 2011 ballpark (355 K–400 K routes) and vary per
/// collector like real RIS tables do.
#[must_use]
pub fn catalog() -> Vec<RouterSpec> {
    const LOCS: [(&str, &str, usize); 12] = [
        ("rrc01", "LINX, London", 392_000),
        ("rrc03", "AMS-IX, Amsterdam", 385_000),
        ("rrc04", "CIXP, Geneva", 377_000),
        ("rrc05", "VIX, Vienna", 369_000),
        ("rrc06", "Otemachi, Japan", 356_000),
        ("rrc07", "Stockholm, Sweden", 372_000),
        ("rrc11", "New York (NY), USA", 398_000),
        ("rrc12", "Frankfurt, Germany", 388_000),
        ("rrc13", "Moscow, Russia", 364_000),
        ("rrc14", "Palo Alto, USA", 381_000),
        ("rrc15", "Sao Paulo, Brazil", 359_000),
        ("rrc16", "Miami, USA", 375_000),
    ];
    LOCS.iter()
        .enumerate()
        .map(|(i, &(name, location, routes))| RouterSpec {
            name,
            location,
            routes,
            seed: 0xC10E_0000 + i as u64,
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let a = FibGen::new(7).routes(5_000).generate();
        let b = FibGen::new(7).routes(5_000).generate();
        assert_eq!(a, b);
    }

    #[test]
    fn different_seeds_differ() {
        let a = FibGen::new(7).routes(5_000).generate();
        let b = FibGen::new(8).routes(5_000).generate();
        assert_ne!(a, b);
    }

    #[test]
    fn reaches_target_size() {
        let fib = FibGen::new(1).routes(20_000).generate();
        assert!(fib.len() >= 20_000);
        assert!(fib.len() < 21_000, "overshoot should be bounded");
    }

    #[test]
    fn respects_next_hop_budget() {
        let fib = FibGen::new(1).routes(3_000).next_hops(4).generate();
        let hops = fib.next_hops();
        assert!(hops.len() <= 4);
        assert!(hops.iter().all(|nh| nh.0 < 4));
    }

    #[test]
    fn tables_overlap_like_real_ribs() {
        // Real RIBs contain covering aggregates; the generator must too,
        // otherwise the compression experiments are trivial.
        let fib = FibGen::new(2).routes(10_000).generate();
        assert!(!fib.is_non_overlapping());
    }

    #[test]
    fn length_histogram_peaks_at_24() {
        let fib = FibGen::new(3).routes(30_000).generate();
        let mut hist = [0usize; 33];
        for r in fib.iter() {
            hist[r.prefix.len() as usize] += 1;
        }
        let max_len = (0..33).max_by_key(|&l| hist[l]).unwrap();
        assert_eq!(max_len, 24, "mode of the length histogram must be /24");
        assert!(hist[24] as f64 > fib.len() as f64 * 0.3);
    }

    #[test]
    fn multi_million_target_stays_calibrated() {
        // Regression: a fixed region pool saturates near 2 M routes —
        // generation slowed to a crawl and the length histogram
        // degenerated. The scaled pool must hit the target with the
        // same /24-mode shape the small tables have.
        let fib = FibGen::new(41).routes(2_000_000).generate();
        assert!(fib.len() >= 2_000_000);
        assert!(fib.len() < 2_001_000, "overshoot should stay bounded");
        let mut hist = [0usize; 33];
        for r in fib.iter() {
            hist[r.prefix.len() as usize] += 1;
        }
        let max_len = (0..33).max_by_key(|&l| hist[l]).unwrap();
        assert_eq!(max_len, 24, "mode of the length histogram must be /24");
        assert!(
            hist[24] as f64 > fib.len() as f64 * 0.3,
            "/24 share degenerated: {} of {}",
            hist[24],
            fib.len()
        );
        // No length bucket may dwarf the mode's natural share — the
        // saturation failure showed up as everything piling into the
        // few lengths that still had free space.
        assert!(
            hist[24] as f64 <= fib.len() as f64 * 0.75,
            "length distribution collapsed into /24"
        );
    }

    #[test]
    fn catalog_matches_table_one() {
        let cat = catalog();
        assert_eq!(cat.len(), 12);
        assert_eq!(cat[0].name, "rrc01");
        assert!(cat
            .iter()
            .all(|r| r.routes >= 355_000 && r.routes <= 400_000));
        // Distinct seeds per router.
        let mut seeds: Vec<u64> = cat.iter().map(|r| r.seed).collect();
        seeds.dedup();
        assert_eq!(seeds.len(), 12);
    }

    #[test]
    fn router_spec_scaling() {
        let spec = &catalog()[0];
        let small = spec.generate(0.01);
        assert!(small.len() >= 3_000 && small.len() <= 6_000);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn router_spec_rejects_bad_scale() {
        let _ = catalog()[0].generate(0.0);
    }
}
