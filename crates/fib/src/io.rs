//! Stream I/O and `std::net` interoperability.
//!
//! The text formats are line-oriented and human-editable:
//!
//! * FIBs — `a.b.c.d/len nh` ([`RouteTable::to_text`] round-trip);
//! * update traces — `A prefix nh` / `W prefix`;
//! * packet traces — one dotted-quad destination per line.
//!
//! Reader/writer functions take `R: Read` / `W: Write` by value, so a
//! `&mut` reference works too (the std blanket impls apply).

use std::io::{self, BufRead, BufReader, Read, Write};
use std::net::Ipv4Addr;

use crate::prefix::Prefix;
use crate::route::{RouteTable, Update};

impl Prefix {
    /// The network address as a [`std::net::Ipv4Addr`].
    #[must_use]
    pub fn network(self) -> Ipv4Addr {
        Ipv4Addr::from(self.bits())
    }

    /// Builds a prefix from an [`Ipv4Addr`] and a length (host bits are
    /// masked off).
    ///
    /// # Panics
    ///
    /// Panics if `len > 32`.
    #[must_use]
    pub fn from_addr(addr: Ipv4Addr, len: u8) -> Self {
        Prefix::new(u32::from(addr), len)
    }
}

/// Reads a routing table from the text format.
///
/// # Errors
///
/// Returns an error for I/O failures or malformed lines (reported with
/// their 1-based line number).
pub fn read_route_table<R: Read>(reader: R) -> io::Result<RouteTable> {
    let text = read_all(reader)?;
    RouteTable::from_text(&text).map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))
}

/// Writes a routing table in the text format.
///
/// # Errors
///
/// Propagates I/O failures.
pub fn write_route_table<W: Write>(mut writer: W, table: &RouteTable) -> io::Result<()> {
    writer.write_all(table.to_text().as_bytes())
}

/// Reads an update trace (`A prefix nh` / `W prefix` lines; blanks and
/// `#` comments skipped).
///
/// # Errors
///
/// Returns an error for I/O failures or malformed lines.
pub fn read_updates<R: Read>(reader: R) -> io::Result<Vec<Update>> {
    let mut out = Vec::new();
    for (lineno, line) in BufReader::new(reader).lines().enumerate() {
        let line = line?;
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let update: Update = line.parse().map_err(|e| {
            io::Error::new(
                io::ErrorKind::InvalidData,
                format!("line {}: {e}", lineno + 1),
            )
        })?;
        out.push(update);
    }
    Ok(out)
}

/// Writes an update trace in the text format.
///
/// # Errors
///
/// Propagates I/O failures.
pub fn write_updates<W: Write>(mut writer: W, updates: &[Update]) -> io::Result<()> {
    for u in updates {
        writeln!(writer, "{u}")?;
    }
    Ok(())
}

/// Reads a packet trace: one dotted-quad destination per line.
///
/// # Errors
///
/// Returns an error for I/O failures or malformed lines.
pub fn read_packets<R: Read>(reader: R) -> io::Result<Vec<u32>> {
    let mut out = Vec::new();
    for (lineno, line) in BufReader::new(reader).lines().enumerate() {
        let line = line?;
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let addr: Ipv4Addr = line.parse().map_err(|_| {
            io::Error::new(
                io::ErrorKind::InvalidData,
                format!("line {}: invalid address {line:?}", lineno + 1),
            )
        })?;
        out.push(u32::from(addr));
    }
    Ok(out)
}

/// Writes a packet trace: one dotted-quad destination per line.
///
/// # Errors
///
/// Propagates I/O failures.
pub fn write_packets<W: Write>(writer: W, packets: &[u32]) -> io::Result<()> {
    let mut w = io::BufWriter::new(writer);
    for &addr in packets {
        writeln!(w, "{}", Ipv4Addr::from(addr))?;
    }
    w.flush()
}

fn read_all<R: Read>(mut reader: R) -> io::Result<String> {
    let mut text = String::new();
    reader.read_to_string(&mut text)?;
    Ok(text)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::prefix::NextHop;

    #[test]
    fn prefix_ipv4addr_interop() {
        let p = Prefix::from_addr(Ipv4Addr::new(10, 1, 2, 3), 8);
        assert_eq!(p.to_string(), "10.0.0.0/8");
        assert_eq!(p.network(), Ipv4Addr::new(10, 0, 0, 0));
    }

    #[test]
    fn route_table_stream_round_trip() {
        let mut t = RouteTable::new();
        t.insert("10.0.0.0/8".parse().unwrap(), NextHop(1));
        t.insert("192.168.0.0/16".parse().unwrap(), NextHop(2));
        let mut buf = Vec::new();
        write_route_table(&mut buf, &t).unwrap();
        let back = read_route_table(buf.as_slice()).unwrap();
        assert_eq!(t, back);
    }

    #[test]
    fn updates_stream_round_trip() {
        let updates = vec![
            Update::Announce {
                prefix: "10.0.0.0/8".parse().unwrap(),
                next_hop: NextHop(5),
            },
            Update::Withdraw {
                prefix: "11.0.0.0/8".parse().unwrap(),
            },
        ];
        let mut buf = Vec::new();
        write_updates(&mut buf, &updates).unwrap();
        assert_eq!(read_updates(buf.as_slice()).unwrap(), updates);
    }

    #[test]
    fn packets_stream_round_trip() {
        let packets = vec![0x0A00_0001, 0xC0A8_0101, 0];
        let mut buf = Vec::new();
        write_packets(&mut buf, &packets).unwrap();
        assert_eq!(read_packets(buf.as_slice()).unwrap(), packets);
    }

    #[test]
    fn readers_skip_comments_and_report_lines() {
        let updates = read_updates("# header\n\nA 10.0.0.0/8 1\n".as_bytes()).unwrap();
        assert_eq!(updates.len(), 1);
        let err = read_packets("10.0.0.1\nnot-an-ip\n".as_bytes()).unwrap_err();
        assert!(err.to_string().contains("line 2"));
        let err = read_updates("Z 10.0.0.0/8\n".as_bytes()).unwrap_err();
        assert!(err.to_string().contains("line 1"));
    }
}
