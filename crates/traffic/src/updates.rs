//! BGP-like update traces.
//!
//! Stands in for the RIPE update feed (2011-10-01 → 10-02) the paper
//! replays. Real BGP churn is dominated by *re-announcements* (path
//! changes rewriting the next hop), with a smaller share of fresh
//! announcements and withdrawals, and it is heavily concentrated on a
//! few unstable prefixes. All three knobs are parameters here.

use clue_fib::{NextHop, Prefix, RouteTable, Update};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::packets::Zipf;

/// Mix of update kinds (weights, normalized internally).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct UpdateMix {
    /// Re-announce an existing prefix with a (usually) different hop.
    pub reannounce: f64,
    /// Announce a brand-new prefix.
    pub announce_new: f64,
    /// Withdraw an existing prefix.
    pub withdraw: f64,
}

impl Default for UpdateMix {
    /// BGP-flavoured default, restricted to *FIB-affecting* updates (a
    /// next-hop-preserving re-announcement never reaches the FIB): path
    /// changes that move the next hop, fresh announcements, and
    /// withdrawals in roughly equal measure, keeping the table size
    /// stable.
    fn default() -> Self {
        UpdateMix {
            reannounce: 0.34,
            announce_new: 0.33,
            withdraw: 0.33,
        }
    }
}

/// Configuration for the update-trace generator.
#[derive(Debug, Clone)]
pub struct UpdateGen {
    seed: u64,
    mix: UpdateMix,
    next_hops: u16,
    /// Zipf exponent over prefixes: how concentrated churn is.
    churn_skew: f64,
    /// Probability that a *new* announcement is a de-aggregation
    /// carrying its covering route's next hop (a redundant specific).
    redundant_rate: f64,
}

impl UpdateGen {
    /// Creates a generator with BGP-flavoured defaults.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        UpdateGen {
            seed,
            mix: UpdateMix::default(),
            next_hops: 24,
            churn_skew: 0.8,
            redundant_rate: 0.45,
        }
    }

    /// Sets the probability that a new announcement inherits its
    /// covering route's next hop (a redundant de-aggregation — the very
    /// routes ONRTC compresses away; ~30–45 % of real tables).
    ///
    /// # Panics
    ///
    /// Panics unless `rate ∈ [0, 1]`.
    #[must_use]
    pub fn redundant_rate(mut self, rate: f64) -> Self {
        assert!((0.0..=1.0).contains(&rate));
        self.redundant_rate = rate;
        self
    }

    /// Sets the kind mix.
    ///
    /// # Panics
    ///
    /// Panics if any weight is negative or all are zero.
    #[must_use]
    pub fn mix(mut self, mix: UpdateMix) -> Self {
        assert!(
            mix.reannounce >= 0.0 && mix.announce_new >= 0.0 && mix.withdraw >= 0.0,
            "weights must be non-negative"
        );
        assert!(
            mix.reannounce + mix.announce_new + mix.withdraw > 0.0,
            "at least one weight must be positive"
        );
        self.mix = mix;
        self
    }

    /// Sets the next-hop alphabet size (should match the FIB's).
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    #[must_use]
    pub fn next_hops(mut self, n: u16) -> Self {
        assert!(n > 0);
        self.next_hops = n;
        self
    }

    /// Sets how concentrated churn is on unstable prefixes
    /// (0 = uniform).
    #[must_use]
    pub fn churn_skew(mut self, s: f64) -> Self {
        assert!(s.is_finite() && s >= 0.0);
        self.churn_skew = s;
        self
    }

    /// Generates `count` updates against (an evolving copy of) `table`.
    ///
    /// The returned trace is *consistent*: withdrawals only target
    /// prefixes currently present, and a prefix announced as new was
    /// absent at that point in the trace.
    ///
    /// # Panics
    ///
    /// Panics if `table` is empty.
    #[must_use]
    pub fn generate(&self, table: &RouteTable, count: usize) -> Vec<Update> {
        assert!(!table.is_empty(), "need a base table to churn");
        let mut rng = StdRng::seed_from_u64(self.seed);
        let mut present: Vec<Prefix> = table.iter().map(|r| r.prefix).collect();
        // Seeded shuffle, then Zipf rank = churn concentration.
        for i in (1..present.len()).rev() {
            present.swap(i, rng.random_range(0..=i));
        }
        let mut current: RouteTable = table.clone();
        let mut current_trie = table.to_trie();

        let total = self.mix.reannounce + self.mix.announce_new + self.mix.withdraw;
        let p_re = self.mix.reannounce / total;
        let p_new = self.mix.announce_new / total;

        let mut out = Vec::with_capacity(count);
        while out.len() < count {
            let zipf = Zipf::new(present.len().max(1), self.churn_skew);
            // Regenerating the sampler each iteration would be O(n²);
            // sample a batch per epoch instead.
            let batch = (count - out.len()).min(present.len().clamp(64, 4096));
            for _ in 0..batch {
                if out.len() >= count {
                    break;
                }
                let roll: f64 = rng.random();
                // If churn has drained the table completely, only fresh
                // announcements remain possible; emit one regardless of
                // the configured mix so the trace always reaches `count`.
                let force_new = current.is_empty();
                let update = if !force_new && roll < p_re {
                    let prefix = present[zipf.sample(&mut rng) % present.len()];
                    if !current.contains(prefix) || !churn_accepts(&mut rng, prefix) {
                        continue;
                    }
                    Update::Announce {
                        prefix,
                        next_hop: NextHop(rng.random_range(0..self.next_hops)),
                    }
                } else if force_new || roll < p_re + p_new {
                    // A fresh, reasonably deep prefix near existing space.
                    let base = present[rng.random_range(0..present.len().max(1)) % present.len()];
                    let len = rng.random_range(20..=24u8).max(base.len());
                    let span = base.size();
                    let prefix = Prefix::new(base.low() + (rng.random_range(0..span) as u32), len);
                    if current.contains(prefix) {
                        continue;
                    }
                    // Many real announcements are de-aggregations whose
                    // next hop matches the covering route.
                    let covering_nh = current_trie.lookup(prefix.low()).map(|(_, &nh)| nh);
                    let next_hop = match covering_nh {
                        Some(nh) if rng.random_bool(self.redundant_rate) => nh,
                        _ => NextHop(rng.random_range(0..self.next_hops)),
                    };
                    present.push(prefix);
                    Update::Announce { prefix, next_hop }
                } else {
                    let idx = zipf.sample(&mut rng) % present.len();
                    let prefix = present[idx];
                    if !current.contains(prefix) || !churn_accepts(&mut rng, prefix) {
                        continue;
                    }
                    Update::Withdraw { prefix }
                };
                current.apply(update);
                match update {
                    Update::Announce { prefix, next_hop } => {
                        current_trie.insert(prefix, next_hop);
                    }
                    Update::Withdraw { prefix } => {
                        current_trie.remove(prefix);
                    }
                }
                out.push(update);
            }
        }
        out
    }
}

/// BGP instability concentrates in long, single-homed prefixes; short
/// covering aggregates are announced by large, stable networks and
/// almost never flap. Accept a churn target with a probability that
/// falls off sharply below /20.
fn churn_accepts(rng: &mut StdRng, prefix: Prefix) -> bool {
    let p = match prefix.len() {
        20..=32 => 1.0,
        16..=19 => 0.25,
        12..=15 => 0.02,
        _ => 0.002,
    };
    rng.random_bool(p)
}

/// Splits a trace into fixed-size windows for the TTF time-series plots
/// (Figures 10–14 put one point per arrival window).
#[must_use]
pub fn windows(trace: &[Update], per_window: usize) -> Vec<&[Update]> {
    assert!(per_window > 0, "window size must be positive");
    trace.chunks(per_window).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use clue_fib::gen::FibGen;

    fn base() -> RouteTable {
        FibGen::new(11).routes(2_000).generate()
    }

    #[test]
    fn deterministic_per_seed() {
        let t = base();
        assert_eq!(
            UpdateGen::new(1).generate(&t, 500),
            UpdateGen::new(1).generate(&t, 500)
        );
        assert_ne!(
            UpdateGen::new(1).generate(&t, 500),
            UpdateGen::new(2).generate(&t, 500)
        );
    }

    #[test]
    fn trace_is_replayable_consistently() {
        let t = base();
        let trace = UpdateGen::new(3).generate(&t, 2_000);
        let mut replay = t.clone();
        for u in &trace {
            match *u {
                Update::Withdraw { prefix } => {
                    assert!(replay.contains(prefix), "withdraw of absent {prefix}");
                }
                Update::Announce { .. } => {}
            }
            replay.apply(*u);
        }
    }

    #[test]
    fn mix_is_respected_roughly() {
        let t = base();
        let trace = UpdateGen::new(4).generate(&t, 4_000);
        let announces = trace.iter().filter(|u| u.is_announce()).count();
        let frac = announces as f64 / trace.len() as f64;
        // Default mix: ~67 % announcements (re + new). Some slack: the
        // length-aware churn filter rejects differently per kind.
        assert!((0.55..0.85).contains(&frac), "announce fraction {frac}");
    }

    #[test]
    fn withdraw_only_mix_drains_table() {
        let t = base();
        let trace = UpdateGen::new(5)
            .mix(UpdateMix {
                reannounce: 0.0,
                announce_new: 0.0,
                withdraw: 1.0,
            })
            .generate(&t, 500);
        assert!(trace.iter().all(|u| !u.is_announce()));
    }

    #[test]
    fn windows_chunk_evenly() {
        let t = base();
        let trace = UpdateGen::new(6).generate(&t, 1_000);
        let w = windows(&trace, 100);
        assert_eq!(w.len(), 10);
        assert!(w.iter().all(|c| c.len() == 100));
    }

    #[test]
    #[should_panic(expected = "base table")]
    fn rejects_empty_base() {
        let _ = UpdateGen::new(0).generate(&RouteTable::new(), 10);
    }
}
