//! Synthetic packet traces.
//!
//! The paper replays a CAIDA Chicago capture; this generator reproduces
//! the two properties the experiments depend on (see DESIGN.md §1):
//!
//! * **skew** — destination popularity follows a Zipf law over prefixes,
//!   so some partitions carry far more traffic than others (Table II's
//!   77.88 % / 0.16 % spread);
//! * **locality** — packets arrive in flow trains, so a recently used
//!   prefix is very likely to be used again soon (what gives DRed its
//!   hit rate).

use clue_fib::{Prefix, RouteTable};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A seeded Zipf sampler over ranks `0..n`.
#[derive(Debug, Clone)]
pub struct Zipf {
    cumulative: Vec<f64>,
}

impl Zipf {
    /// Builds a sampler for `n` ranks with exponent `s`
    /// (`P(rank k) ∝ 1/(k+1)^s`).
    ///
    /// # Panics
    ///
    /// Panics if `n == 0` or `s` is not finite and non-negative.
    #[must_use]
    pub fn new(n: usize, s: f64) -> Self {
        assert!(n > 0, "zipf needs at least one rank");
        assert!(s.is_finite() && s >= 0.0, "exponent must be finite, ≥ 0");
        let mut cumulative = Vec::with_capacity(n);
        let mut total = 0.0;
        for k in 0..n {
            total += 1.0 / ((k + 1) as f64).powf(s);
            cumulative.push(total);
        }
        for c in &mut cumulative {
            *c /= total;
        }
        Zipf { cumulative }
    }

    /// Samples a rank.
    pub fn sample(&self, rng: &mut StdRng) -> usize {
        let u: f64 = rng.random();
        self.cumulative.partition_point(|&c| c < u)
    }

    /// Number of ranks.
    #[must_use]
    pub fn len(&self) -> usize {
        self.cumulative.len()
    }

    /// Whether the sampler is degenerate (cannot happen — kept for API
    /// symmetry).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.cumulative.is_empty()
    }
}

/// Configuration for the packet-trace generator.
#[derive(Debug, Clone)]
pub struct PacketGen {
    seed: u64,
    zipf_exponent: f64,
    /// Mean packets per flow train (geometric).
    mean_flow_len: f64,
    /// Number of concurrently active flows.
    active_flows: usize,
    /// Hot-set drift: every `.0` packets, `.1` of the popularity ranks
    /// are re-shuffled (0.0 = stationary).
    drift: Option<(usize, f64)>,
}

impl PacketGen {
    /// Creates a generator with CAIDA-flavoured defaults.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        PacketGen {
            seed,
            zipf_exponent: 1.0,
            mean_flow_len: 10.0,
            active_flows: 64,
            drift: None,
        }
    }

    /// Enables hot-set drift: every `period` packets, a `fraction` of
    /// the popularity ranking is re-shuffled. This is the burstiness
    /// that defeats statically provisioned redundancy (paper §I).
    ///
    /// # Panics
    ///
    /// Panics unless `period > 0` and `fraction ∈ [0, 1]`.
    #[must_use]
    pub fn hot_drift(mut self, period: usize, fraction: f64) -> Self {
        assert!(period > 0, "drift period must be positive");
        assert!((0.0..=1.0).contains(&fraction));
        self.drift = Some((period, fraction));
        self
    }

    /// Sets the Zipf popularity exponent (0 = uniform; ~1 = Internet).
    #[must_use]
    pub fn zipf_exponent(mut self, s: f64) -> Self {
        assert!(s.is_finite() && s >= 0.0);
        self.zipf_exponent = s;
        self
    }

    /// Sets the mean flow-train length in packets.
    ///
    /// # Panics
    ///
    /// Panics unless `len ≥ 1`.
    #[must_use]
    pub fn mean_flow_len(mut self, len: f64) -> Self {
        assert!(len >= 1.0, "flow trains are at least one packet");
        self.mean_flow_len = len;
        self
    }

    /// Sets the number of interleaved active flows.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    #[must_use]
    pub fn active_flows(mut self, n: usize) -> Self {
        assert!(n > 0);
        self.active_flows = n;
        self
    }

    /// Generates `count` destination addresses targeting `table`'s
    /// prefixes.
    ///
    /// # Panics
    ///
    /// Panics if `table` is empty.
    #[must_use]
    pub fn generate(&self, table: &RouteTable, count: usize) -> Vec<u32> {
        assert!(!table.is_empty(), "cannot target an empty table");
        let mut rng = StdRng::seed_from_u64(self.seed);

        // Assign Zipf ranks to prefixes in a seeded shuffle so hot
        // prefixes are scattered across the address space.
        let mut prefixes: Vec<Prefix> = table.iter().map(|r| r.prefix).collect();
        for i in (1..prefixes.len()).rev() {
            prefixes.swap(i, rng.random_range(0..=i));
        }
        let zipf = Zipf::new(prefixes.len(), self.zipf_exponent);

        // Flow slots: (address, remaining packets); 0 remaining = idle.
        let mut flows: Vec<(u32, u32)> = vec![(0, 0); self.active_flows];
        let mut out = Vec::with_capacity(count);
        let continue_p = 1.0 - 1.0 / self.mean_flow_len;
        let mut next_drift = self.drift.map(|(period, _)| period);

        while out.len() < count {
            if let (Some(at), Some((period, fraction))) = (next_drift, self.drift) {
                if out.len() >= at {
                    // Re-shuffle a slice of the popularity ranking: the
                    // hot set moves, as bursty traffic does.
                    let swaps = ((prefixes.len() as f64) * fraction) as usize;
                    for _ in 0..swaps {
                        let a = rng.random_range(0..prefixes.len());
                        let b = rng.random_range(0..prefixes.len());
                        prefixes.swap(a, b);
                    }
                    next_drift = Some(at + period);
                }
            }
            let slot = rng.random_range(0..self.active_flows);
            if flows[slot].1 == 0 {
                // Start a new flow train on a Zipf-sampled prefix.
                let p = prefixes[zipf.sample(&mut rng)];
                let span = (p.high() - p.low()) as u64 + 1;
                let addr = p.low() + (rng.random_range(0..span) as u32);
                flows[slot] = (addr, geometric(&mut rng, continue_p));
            }
            let (addr, remaining) = &mut flows[slot];
            out.push(*addr);
            *remaining -= 1;
        }
        out
    }
}

/// Geometric sample ≥ 1 with continuation probability `p`.
fn geometric(rng: &mut StdRng, p: f64) -> u32 {
    let mut n = 1;
    while n < 10_000 && rng.random_bool(p) {
        n += 1;
    }
    n
}

#[cfg(test)]
mod tests {
    use super::*;
    use clue_fib::NextHop;

    fn table(count: u32) -> RouteTable {
        (0..count)
            .map(|i| (Prefix::new(i << 16, 16), NextHop(1)))
            .collect()
    }

    #[test]
    fn deterministic_per_seed() {
        let t = table(64);
        let a = PacketGen::new(5).generate(&t, 1000);
        let b = PacketGen::new(5).generate(&t, 1000);
        let c = PacketGen::new(6).generate(&t, 1000);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn every_packet_hits_some_prefix() {
        let t = table(16);
        let trie = t.to_trie();
        for addr in PacketGen::new(1).generate(&t, 2000) {
            assert!(trie.lookup(addr).is_some(), "addr {addr:#x} missed");
        }
    }

    #[test]
    fn zipf_skews_popularity() {
        let t = table(256);
        let trace = PacketGen::new(2).zipf_exponent(1.2).generate(&t, 20_000);
        let mut counts = std::collections::HashMap::new();
        for addr in trace {
            *counts.entry(addr >> 16).or_insert(0usize) += 1;
        }
        let mut loads: Vec<usize> = counts.into_values().collect();
        loads.sort_unstable_by(|a, b| b.cmp(a));
        // The hottest block must dwarf the median.
        assert!(loads[0] > 10 * loads[loads.len() / 2]);
    }

    #[test]
    fn uniform_exponent_spreads_load() {
        let t = table(16);
        let trace = PacketGen::new(3).zipf_exponent(0.0).generate(&t, 32_000);
        let mut counts = [0usize; 16];
        for addr in trace {
            counts[(addr >> 16) as usize] += 1;
        }
        let max = *counts.iter().max().unwrap();
        let min = *counts.iter().min().unwrap();
        assert!(max < min * 2, "uniform trace too skewed: {max} vs {min}");
    }

    #[test]
    fn flow_trains_repeat_addresses() {
        let t = table(256);
        let trace = PacketGen::new(4).mean_flow_len(20.0).generate(&t, 10_000);
        let distinct: std::collections::HashSet<u32> = trace.iter().copied().collect();
        // With 20-packet trains, distinct addresses ≪ packets.
        assert!(distinct.len() * 5 < trace.len());
    }

    #[test]
    fn hot_drift_moves_the_hot_set() {
        let t = table(512);
        // Stationary: first and second halves of the trace share their
        // hottest block. Drifting: they usually do not.
        let hottest = |trace: &[u32]| {
            let mut counts = std::collections::HashMap::new();
            for &a in trace {
                *counts.entry(a >> 16).or_insert(0usize) += 1;
            }
            counts.into_iter().max_by_key(|&(_, c)| c).unwrap().0
        };
        let stationary = PacketGen::new(8).zipf_exponent(1.3).generate(&t, 40_000);
        assert_eq!(
            hottest(&stationary[..20_000]),
            hottest(&stationary[20_000..])
        );
        let drifting = PacketGen::new(8)
            .zipf_exponent(1.3)
            .hot_drift(10_000, 1.0)
            .generate(&t, 40_000);
        assert_ne!(hottest(&drifting[..10_000]), hottest(&drifting[30_000..]));
    }

    #[test]
    fn zipf_sampler_is_normalized_and_ordered() {
        let z = Zipf::new(100, 1.0);
        assert_eq!(z.len(), 100);
        let mut rng = StdRng::seed_from_u64(1);
        let mut counts = [0usize; 100];
        for _ in 0..50_000 {
            counts[z.sample(&mut rng)] += 1;
        }
        assert!(counts[0] > counts[50]);
        assert!(counts[0] > counts[99]);
    }

    #[test]
    #[should_panic(expected = "empty table")]
    fn rejects_empty_table() {
        let _ = PacketGen::new(0).generate(&RouteTable::new(), 10);
    }
}
