//! Workload profiling: how traffic distributes over partitions.
//!
//! This is the machinery behind Table II and the "Original" bars of
//! Figure 15: measure the traffic share of each partition, sort the
//! partitions by share, and map consecutive groups onto chips to build
//! the paper's *adversarial* (maximally uneven) placement.
//!
//! [`Pacer`] is the replay-side complement: it turns a target offered
//! rate into per-item deadlines so a load generator can play a trace at
//! a configured events-per-second instead of as fast as the socket
//! accepts them.

use std::time::{Duration, Instant};

/// Deadline-based pacing to a target offered rate.
///
/// The pacer computes, for the i-th event, the ideal send time
/// `start + i / rate` and tells the caller how long to sleep to honor
/// it. Deadlines are absolute, so a caller that falls behind (e.g.
/// because backpressure blocked a send) is *not* asked to sleep — it
/// naturally catches up, which is what "offered rate" means: the
/// schedule does not slow down because the system under test did.
#[derive(Debug, Clone)]
pub struct Pacer {
    start: Instant,
    interval: Option<Duration>,
    sent: u64,
}

impl Pacer {
    /// A pacer targeting `per_second` events per second; a rate of zero
    /// or less means unlimited (never sleeps).
    #[must_use]
    pub fn new(per_second: f64) -> Self {
        Pacer {
            start: Instant::now(),
            interval: (per_second > 0.0).then(|| Duration::from_secs_f64(1.0 / per_second)),
            sent: 0,
        }
    }

    /// Accounts one event and returns how long to sleep *before* sending
    /// it (zero when unlimited or already behind schedule).
    #[must_use]
    pub fn next_delay(&mut self) -> Duration {
        let Some(interval) = self.interval else {
            self.sent += 1;
            return Duration::ZERO;
        };
        let deadline = Duration::from_secs_f64(interval.as_secs_f64() * self.sent as f64);
        self.sent += 1;
        deadline.saturating_sub(self.start.elapsed())
    }

    /// Events accounted so far.
    #[must_use]
    pub fn sent(&self) -> u64 {
        self.sent
    }

    /// The rate actually achieved since the pacer was created.
    #[must_use]
    pub fn achieved_per_second(&self) -> f64 {
        let secs = self.start.elapsed().as_secs_f64();
        if secs <= 0.0 {
            0.0
        } else {
            self.sent as f64 / secs
        }
    }
}

/// Per-bucket traffic counts for a trace.
///
/// `bucket_of` is any indexing function (see `clue_partition::Indexer`);
/// a closure keeps this crate independent of the partition schemes.
#[must_use]
pub fn profile(trace: &[u32], buckets: usize, mut bucket_of: impl FnMut(u32) -> usize) -> Vec<u64> {
    let mut counts = vec![0u64; buckets];
    for &addr in trace {
        let b = bucket_of(addr);
        assert!(b < buckets, "indexer returned bucket {b} of {buckets}");
        counts[b] += 1;
    }
    counts
}

/// Converts counts to shares in `[0, 1]`.
#[must_use]
pub fn shares(counts: &[u64]) -> Vec<f64> {
    let total: u64 = counts.iter().sum();
    if total == 0 {
        return vec![0.0; counts.len()];
    }
    counts.iter().map(|&c| c as f64 / total as f64).collect()
}

/// The paper's adversarial placement: sort buckets by load (descending)
/// and deal them out in consecutive blocks of `buckets/chips`, so chip 0
/// receives all the hottest buckets.
///
/// Returns `assignment[bucket] = chip`.
///
/// # Panics
///
/// Panics if `chips == 0` or does not divide the bucket count.
#[must_use]
pub fn adversarial_mapping(counts: &[u64], chips: usize) -> Vec<usize> {
    assert!(chips > 0, "need at least one chip");
    assert!(
        counts.len().is_multiple_of(chips),
        "chips ({chips}) must divide bucket count ({})",
        counts.len()
    );
    let per_chip = counts.len() / chips;
    let mut order: Vec<usize> = (0..counts.len()).collect();
    order.sort_by_key(|&b| std::cmp::Reverse(counts[b]));
    let mut assignment = vec![0usize; counts.len()];
    for (rank, &bucket) in order.iter().enumerate() {
        assignment[bucket] = rank / per_chip;
    }
    assignment
}

/// Per-chip load shares under an assignment.
#[must_use]
pub fn chip_shares(counts: &[u64], assignment: &[usize], chips: usize) -> Vec<f64> {
    assert_eq!(counts.len(), assignment.len());
    let mut chip_counts = vec![0u64; chips];
    for (b, &chip) in assignment.iter().enumerate() {
        assert!(chip < chips);
        chip_counts[chip] += counts[b];
    }
    shares(&chip_counts)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn profile_counts_by_index() {
        let trace = [0u32, 1, 2, 3, 0, 0];
        let counts = profile(&trace, 2, |a| (a % 2) as usize);
        assert_eq!(counts, vec![4, 2]);
    }

    #[test]
    fn shares_normalize() {
        let s = shares(&[3, 1]);
        assert!((s[0] - 0.75).abs() < 1e-9);
        assert!((s[1] - 0.25).abs() < 1e-9);
        assert_eq!(shares(&[0, 0]), vec![0.0, 0.0]);
    }

    #[test]
    fn adversarial_mapping_concentrates_heat() {
        // 8 buckets, loads descending by index already.
        let counts = [100u64, 90, 80, 70, 4, 3, 2, 1];
        let assignment = adversarial_mapping(&counts, 2);
        // The four hottest go to chip 0.
        assert_eq!(&assignment[..4], &[0, 0, 0, 0]);
        assert_eq!(&assignment[4..], &[1, 1, 1, 1]);
        let cs = chip_shares(&counts, &assignment, 2);
        assert!(cs[0] > 0.9);
    }

    #[test]
    fn adversarial_mapping_handles_shuffled_loads() {
        let counts = [1u64, 100, 2, 90];
        let assignment = adversarial_mapping(&counts, 2);
        assert_eq!(assignment[1], 0);
        assert_eq!(assignment[3], 0);
        assert_eq!(assignment[0], 1);
        assert_eq!(assignment[2], 1);
    }

    #[test]
    #[should_panic(expected = "must divide")]
    fn mapping_rejects_nondivisible() {
        let _ = adversarial_mapping(&[1, 2, 3], 2);
    }

    #[test]
    #[should_panic(expected = "indexer returned")]
    fn profile_rejects_out_of_range_index() {
        let _ = profile(&[5], 2, |a| a as usize);
    }

    #[test]
    fn pacer_unlimited_never_sleeps() {
        let mut p = Pacer::new(0.0);
        for _ in 0..100 {
            assert_eq!(p.next_delay(), Duration::ZERO);
        }
        assert_eq!(p.sent(), 100);
    }

    #[test]
    fn pacer_spreads_deadlines() {
        // 1000/s → the 100th event's deadline is ~100 ms out, far past
        // the microseconds this loop takes, so a sleep is requested.
        let mut p = Pacer::new(1_000.0);
        let mut last = Duration::ZERO;
        for _ in 0..100 {
            last = p.next_delay();
        }
        assert!(last > Duration::from_millis(50), "deadline {last:?}");
        assert!(last <= Duration::from_millis(100));
    }

    #[test]
    fn pacer_behind_schedule_catches_up() {
        let mut p = Pacer::new(1_000_000.0);
        std::thread::sleep(Duration::from_millis(5));
        // 5 ms behind → thousands of events owe no sleep.
        for _ in 0..1_000 {
            assert_eq!(p.next_delay(), Duration::ZERO);
        }
        assert!(p.achieved_per_second() > 0.0);
    }
}
