//! Workload profiling: how traffic distributes over partitions.
//!
//! This is the machinery behind Table II and the "Original" bars of
//! Figure 15: measure the traffic share of each partition, sort the
//! partitions by share, and map consecutive groups onto chips to build
//! the paper's *adversarial* (maximally uneven) placement.

/// Per-bucket traffic counts for a trace.
///
/// `bucket_of` is any indexing function (see `clue_partition::Indexer`);
/// a closure keeps this crate independent of the partition schemes.
#[must_use]
pub fn profile(trace: &[u32], buckets: usize, mut bucket_of: impl FnMut(u32) -> usize) -> Vec<u64> {
    let mut counts = vec![0u64; buckets];
    for &addr in trace {
        let b = bucket_of(addr);
        assert!(b < buckets, "indexer returned bucket {b} of {buckets}");
        counts[b] += 1;
    }
    counts
}

/// Converts counts to shares in `[0, 1]`.
#[must_use]
pub fn shares(counts: &[u64]) -> Vec<f64> {
    let total: u64 = counts.iter().sum();
    if total == 0 {
        return vec![0.0; counts.len()];
    }
    counts.iter().map(|&c| c as f64 / total as f64).collect()
}

/// The paper's adversarial placement: sort buckets by load (descending)
/// and deal them out in consecutive blocks of `buckets/chips`, so chip 0
/// receives all the hottest buckets.
///
/// Returns `assignment[bucket] = chip`.
///
/// # Panics
///
/// Panics if `chips == 0` or does not divide the bucket count.
#[must_use]
pub fn adversarial_mapping(counts: &[u64], chips: usize) -> Vec<usize> {
    assert!(chips > 0, "need at least one chip");
    assert!(
        counts.len().is_multiple_of(chips),
        "chips ({chips}) must divide bucket count ({})",
        counts.len()
    );
    let per_chip = counts.len() / chips;
    let mut order: Vec<usize> = (0..counts.len()).collect();
    order.sort_by_key(|&b| std::cmp::Reverse(counts[b]));
    let mut assignment = vec![0usize; counts.len()];
    for (rank, &bucket) in order.iter().enumerate() {
        assignment[bucket] = rank / per_chip;
    }
    assignment
}

/// Per-chip load shares under an assignment.
#[must_use]
pub fn chip_shares(counts: &[u64], assignment: &[usize], chips: usize) -> Vec<f64> {
    assert_eq!(counts.len(), assignment.len());
    let mut chip_counts = vec![0u64; chips];
    for (b, &chip) in assignment.iter().enumerate() {
        assert!(chip < chips);
        chip_counts[chip] += counts[b];
    }
    shares(&chip_counts)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn profile_counts_by_index() {
        let trace = [0u32, 1, 2, 3, 0, 0];
        let counts = profile(&trace, 2, |a| (a % 2) as usize);
        assert_eq!(counts, vec![4, 2]);
    }

    #[test]
    fn shares_normalize() {
        let s = shares(&[3, 1]);
        assert!((s[0] - 0.75).abs() < 1e-9);
        assert!((s[1] - 0.25).abs() < 1e-9);
        assert_eq!(shares(&[0, 0]), vec![0.0, 0.0]);
    }

    #[test]
    fn adversarial_mapping_concentrates_heat() {
        // 8 buckets, loads descending by index already.
        let counts = [100u64, 90, 80, 70, 4, 3, 2, 1];
        let assignment = adversarial_mapping(&counts, 2);
        // The four hottest go to chip 0.
        assert_eq!(&assignment[..4], &[0, 0, 0, 0]);
        assert_eq!(&assignment[4..], &[1, 1, 1, 1]);
        let cs = chip_shares(&counts, &assignment, 2);
        assert!(cs[0] > 0.9);
    }

    #[test]
    fn adversarial_mapping_handles_shuffled_loads() {
        let counts = [1u64, 100, 2, 90];
        let assignment = adversarial_mapping(&counts, 2);
        assert_eq!(assignment[1], 0);
        assert_eq!(assignment[3], 0);
        assert_eq!(assignment[0], 1);
        assert_eq!(assignment[2], 1);
    }

    #[test]
    #[should_panic(expected = "must divide")]
    fn mapping_rejects_nondivisible() {
        let _ = adversarial_mapping(&[1, 2, 3], 2);
    }

    #[test]
    #[should_panic(expected = "indexer returned")]
    fn profile_rejects_out_of_range_index() {
        let _ = profile(&[5], 2, |a| a as usize);
    }
}
