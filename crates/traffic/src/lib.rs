//! Synthetic traffic for the CLUE reproduction.
//!
//! Stands in for the two captures the paper replays (see DESIGN.md §1):
//!
//! * [`PacketGen`] — CAIDA-like packet traces: Zipf destination
//!   popularity (skew → partition load imbalance) and flow trains
//!   (locality → DRed hit rate);
//! * [`UpdateGen`] — RIPE-like BGP churn: re-announce/announce/withdraw
//!   mixes concentrated on unstable prefixes, split into arrival
//!   [`windows`] for the TTF time series;
//! * [`workload`] — per-partition traffic profiling and the adversarial
//!   partition→chip mapping of Table II / Figure 15.
//!
//! # Examples
//!
//! ```
//! use clue_fib::gen::FibGen;
//! use clue_traffic::{PacketGen, UpdateGen};
//!
//! let fib = FibGen::new(1).routes(1_000).generate();
//! let packets = PacketGen::new(2).generate(&fib, 5_000);
//! assert_eq!(packets.len(), 5_000);
//! let updates = UpdateGen::new(3).generate(&fib, 100);
//! assert_eq!(updates.len(), 100);
//! ```

#![warn(missing_docs)]
#![warn(clippy::all)]

mod packets;
mod updates;
pub mod workload;

pub use packets::{PacketGen, Zipf};
pub use updates::{windows, UpdateGen, UpdateMix};
