//! End-to-end loopback tests: real sockets, real threads, one process.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::Duration;

use clue_fib::gen::FibGen;
use clue_fib::RouteTable;
use clue_net::frame::{Frame, FrameType};
use clue_net::{ClientConfig, Connection, LoadConfig, Server, ServerConfig, Transport};
use clue_router::{OverflowPolicy, RouterConfig};
use clue_traffic::{PacketGen, UpdateGen};

/// Semantics-critical tests run over both transports: the evloop server
/// must be observably identical to the per-connection-thread original.
const TRANSPORTS: [Transport; 2] = [Transport::Threads, Transport::Evloop];

fn small_fib(seed: u64, routes: usize) -> RouteTable {
    FibGen::new(seed).routes(routes).generate()
}

fn local_server_on(table: &RouteTable, router: RouterConfig, transport: Transport) -> Server {
    let cfg = ServerConfig {
        listen: "127.0.0.1:0".to_string(),
        router,
        idle_poll: Duration::from_millis(10),
        transport,
        ..ServerConfig::default()
    };
    Server::start(table, &cfg).expect("bind loopback")
}

fn local_server(table: &RouteTable, router: RouterConfig) -> Server {
    local_server_on(table, router, Transport::Threads)
}

fn client_for(server: &Server) -> Connection {
    let mut cfg = ClientConfig::to_addr(server.local_addr().to_string());
    cfg.initial_backoff = Duration::from_millis(10);
    cfg.max_backoff = Duration::from_millis(200);
    Connection::connect(cfg).expect("connect loopback")
}

#[test]
fn lookups_over_tcp_match_the_reference_trie() {
    let fib = small_fib(601, 1_200);
    let packets = PacketGen::new(602).generate(&fib, 4_000);
    let reference = clue_compress::onrtc(&fib).to_trie();

    for transport in TRANSPORTS {
        let server = local_server_on(&fib, RouterConfig::default(), transport);
        let mut conn = client_for(&server);
        for batch in packets.chunks(256) {
            let got = conn.lookup(batch).expect("lookup batch");
            assert_eq!(got.len(), batch.len());
            for (&addr, nh) in batch.iter().zip(&got) {
                assert_eq!(
                    *nh,
                    reference.lookup(addr).map(|(_, &v)| v),
                    "{transport}: addr {addr:#x}"
                );
            }
        }
        conn.heartbeat().expect("heartbeat");
        let report = conn.close().expect("close");
        assert_eq!(report.reconnects, 0, "{transport}");

        let final_report = server.drain().expect("server drains cleanly");
        assert_eq!(
            final_report.snapshot.completions,
            packets.len() as u64,
            "{transport}"
        );
    }
}

#[test]
fn updates_over_tcp_reach_the_sequential_fib_with_zero_loss_under_block() {
    let fib = small_fib(611, 1_000);
    let updates = UpdateGen::new(612).generate(&fib, 2_500);
    let mut expect = fib.clone();
    for &u in &updates {
        expect.apply(u);
    }
    // A tiny ingress queue forces the Block policy to push back on the
    // wire; every update must still arrive — on both transports (the
    // evloop maps the blocked router call onto a paused socket).
    for transport in TRANSPORTS {
        let router = RouterConfig {
            update_queue: 8,
            batch_size: 4,
            overflow: OverflowPolicy::Block,
            ..RouterConfig::default()
        };
        let server = local_server_on(&fib, router, transport);
        let mut conn = client_for(&server);
        for batch in updates.chunks(32) {
            conn.send_updates(batch).expect("send updates");
        }
        conn.flush_acks().expect("flush");
        let client_report = conn.close().expect("close");
        assert_eq!(client_report.accepted, updates.len() as u64, "{transport}");
        assert_eq!(client_report.dropped, 0, "{transport}");

        let report = server.drain().expect("server drains cleanly");
        assert_eq!(report.final_table, expect, "{transport}");
        assert_eq!(report.snapshot.update_drops, 0, "{transport}");
        assert_eq!(
            report.snapshot.updates_received,
            updates.len() as u64,
            "{transport}"
        );
    }
}

#[test]
fn drop_newest_over_tcp_accounts_for_every_update() {
    let fib = small_fib(621, 800);
    let updates = UpdateGen::new(622).generate(&fib, 3_000);
    for transport in TRANSPORTS {
        let router = RouterConfig {
            update_queue: 4,
            batch_size: 2,
            overflow: OverflowPolicy::DropNewest,
            ..RouterConfig::default()
        };
        let server = local_server_on(&fib, router, transport);
        let mut conn = client_for(&server);
        for batch in updates.chunks(64) {
            conn.send_updates(batch).expect("send updates");
        }
        conn.flush_acks().expect("flush");
        let client_report = conn.close().expect("close");
        // Nothing silently lost: every update is acked as either accepted
        // or dropped, and the server's own counter agrees.
        assert_eq!(
            client_report.accepted + client_report.dropped,
            updates.len() as u64,
            "{transport}"
        );
        assert!(
            client_report.dropped > 0,
            "{transport}: tiny queue must drop something"
        );

        let report = server.drain().expect("server drains cleanly");
        assert_eq!(
            report.snapshot.update_drops, client_report.dropped,
            "{transport}"
        );
        assert_eq!(
            report.snapshot.updates_received, client_report.accepted,
            "{transport}"
        );
    }
}

#[test]
fn stats_query_exposes_net_ledger_and_overflow_counters() {
    let fib = small_fib(631, 600);
    for transport in TRANSPORTS {
        let server = local_server_on(&fib, RouterConfig::default(), transport);
        let mut conn = client_for(&server);
        let _ = conn.lookup(&[0x0A00_0001, 0xC0A8_0101]).expect("lookup");
        let json = conn.stats_json().expect("stats");
        for key in [
            "\"uptime_ms\":",
            "\"router\":",
            "\"overflow\":{\"update_drops\":",
            "\"net\":",
            "\"connections\":[",
            "\"protocol_errors\":",
            "\"io_errors\":",
            "\"accept_errors\":",
            "\"plane\":{\"backend\":\"tcam\"",
            "\"heap_bytes\":",
            "\"lookups\":2",
        ] {
            assert!(json.contains(key), "{transport}: missing {key} in {json}");
        }
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        let _ = conn.close().expect("close");
        let _ = server.drain().expect("server drains cleanly");
    }
}

#[test]
fn garbage_bytes_get_an_error_frame_and_a_counted_protocol_error() {
    let fib = small_fib(641, 500);
    for transport in TRANSPORTS {
        let server = local_server_on(&fib, RouterConfig::default(), transport);
        let mut raw = TcpStream::connect(server.local_addr()).expect("connect raw");
        raw.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
        raw.write_all(b"this is definitely not a CLUE frame....")
            .expect("write garbage");
        let reply = Frame::read_from(&mut raw).expect("server replies before closing");
        assert_eq!(reply.kind, FrameType::Error, "{transport}");
        // The server hangs up after a protocol error.
        let mut rest = Vec::new();
        let _ = raw.read_to_end(&mut rest);
        assert!(rest.is_empty(), "{transport}");

        // The error shows up in the per-connection ledger.
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        while server.net_stats().protocol_errors() == 0 && std::time::Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(10));
        }
        assert_eq!(server.net_stats().protocol_errors(), 1, "{transport}");
        let _ = server.drain().expect("server drains cleanly");
    }
}

#[test]
fn client_reconnects_and_resumes_after_a_server_restart() {
    let fib = small_fib(651, 900);
    let updates = UpdateGen::new(652).generate(&fib, 600);
    let (first, second) = updates.split_at(300);

    for transport in TRANSPORTS {
        let server1 = local_server_on(&fib, RouterConfig::default(), transport);
        let addr = server1.local_addr();
        let mut cfg = ClientConfig::to_addr(addr.to_string());
        cfg.initial_backoff = Duration::from_millis(10);
        cfg.max_backoff = Duration::from_millis(100);
        cfg.max_reconnect_attempts = 50;
        let mut conn = Connection::connect(cfg).expect("connect");

        for batch in first.chunks(32) {
            conn.send_updates(batch).expect("send to first server");
        }
        conn.flush_acks().expect("flush");
        let report1 = server1.drain().expect("server drains cleanly");
        let mut expect = fib.clone();
        for &u in first {
            expect.apply(u);
        }
        assert_eq!(report1.final_table, expect, "{transport}");

        // Same port, resumed table: the world the client reconnects into.
        let cfg2 = ServerConfig {
            listen: addr.to_string(),
            idle_poll: Duration::from_millis(10),
            transport,
            ..ServerConfig::default()
        };
        let server2 = Server::start(&report1.final_table, &cfg2).expect("rebind same port");

        for batch in second.chunks(32) {
            conn.send_updates(batch).expect("send across restart");
        }
        conn.flush_acks().expect("flush after resume");
        assert!(
            conn.reconnects() >= 1,
            "{transport}: restart must force a reconnect"
        );
        let client_report = conn.close().expect("close");
        assert_eq!(
            client_report.accepted,
            updates.len() as u64,
            "{transport}: every update acked despite the restart"
        );

        let report2 = server2.drain().expect("server drains cleanly");
        for &u in second {
            expect.apply(u);
        }
        assert_eq!(
            report2.final_table, expect,
            "{transport}: converges to the oracle's final table across the reconnect"
        );
    }
}

#[test]
fn loadgen_sustains_a_mixed_workload_and_drains_cleanly() {
    let fib = small_fib(661, 1_500);
    let packets = PacketGen::new(662).generate(&fib, 6_000);
    let updates = UpdateGen::new(663).generate(&fib, 1_200);

    let server = local_server(&fib, RouterConfig::default());
    let load = LoadConfig {
        client: ClientConfig::to_addr(server.local_addr().to_string()),
        lookup_threads: 3,
        lookup_batch: 128,
        update_batch: 32,
        // Rate-limit the updates a little so pacing code runs; leave
        // lookups unlimited so the test stays fast.
        lookup_rate: 0.0,
        update_rate: 200_000.0,
    };
    let report = clue_net::run_load(&packets, &updates, &load).expect("load run");
    assert_eq!(report.lookups_sent, packets.len() as u64);
    assert_eq!(report.lookups_answered, packets.len() as u64);
    assert_eq!(report.updates_sent, updates.len() as u64);
    assert_eq!(report.updates_accepted, updates.len() as u64);
    assert_eq!(report.updates_dropped, 0);
    let json = report.to_json();
    assert!(json.contains("\"lookups_answered\":6000"), "{json}");

    let final_report = server.drain().expect("server drains cleanly");
    let mut expect = fib.clone();
    for &u in &updates {
        expect.apply(u);
    }
    assert_eq!(final_report.final_table, expect);
    assert_eq!(final_report.snapshot.completions, packets.len() as u64);
}

#[test]
fn loadgen_counts_failed_dials_instead_of_aborting() {
    // A port with nothing listening: bind, note the address, drop the
    // listener. Every dial is refused immediately.
    let dead_addr = {
        let l = std::net::TcpListener::bind("127.0.0.1:0").expect("bind");
        l.local_addr().expect("addr").to_string()
    };
    let fib = small_fib(665, 400);
    let packets = PacketGen::new(666).generate(&fib, 500);
    let updates = UpdateGen::new(667).generate(&fib, 100);
    let load = LoadConfig {
        client: ClientConfig::to_addr(dead_addr),
        lookup_threads: 2,
        ..LoadConfig::default()
    };
    let report = clue_net::run_load(&packets, &updates, &load).expect("run yields a report");
    // One update worker + two lookup workers, all refused.
    assert_eq!(report.dial_errors, 3, "every failed dial counted");
    assert_eq!(report.lookups_sent, 0);
    assert_eq!(report.updates_sent, 0);
    assert!(
        report.to_json().contains("\"dial_errors\":3"),
        "{}",
        report.to_json()
    );
}

#[test]
fn graceful_drain_refuses_new_work_but_keeps_its_promises() {
    let fib = small_fib(671, 700);
    let updates = UpdateGen::new(672).generate(&fib, 200);
    let mut expect = fib.clone();
    for &u in &updates {
        expect.apply(u);
    }
    for transport in TRANSPORTS {
        let server = local_server_on(&fib, RouterConfig::default(), transport);
        let mut cfg = ClientConfig::to_addr(server.local_addr().to_string());
        // Short reconnect budget: once drained nothing listens, and the
        // failure assert below should not take ten backoff rounds.
        cfg.initial_backoff = Duration::from_millis(5);
        cfg.max_backoff = Duration::from_millis(20);
        cfg.max_reconnect_attempts = 2;
        let mut conn = Connection::connect(cfg).expect("connect");
        for batch in updates.chunks(32) {
            conn.send_updates(batch).expect("send");
        }
        conn.flush_acks().expect("flush");

        server.request_shutdown();
        assert!(server.shutdown_requested());
        let report = server.drain().expect("server drains cleanly");
        // Everything acked before the drain is in the final table.
        assert_eq!(report.final_table, expect, "{transport}");

        // The accept loop is gone; the old connection observes the
        // shutdown on its next operation and cannot reconnect.
        let next = conn.lookup(&[0x0A00_0001]);
        assert!(next.is_err(), "{transport}: post-drain lookups must fail");
    }
}

#[test]
fn non_default_backends_serve_identical_answers_over_tcp() {
    use clue_router::BackendKind;

    let fib = small_fib(681, 1_000);
    let packets = PacketGen::new(682).generate(&fib, 2_000);
    let updates = UpdateGen::new(683).generate(&fib, 400);
    let reference = clue_compress::onrtc(&fib).to_trie();

    for backend in [BackendKind::Trie, BackendKind::Cfib] {
        let router = RouterConfig {
            backend,
            ..RouterConfig::default()
        };
        let server = local_server(&fib, router);
        let mut conn = client_for(&server);
        // Answers from a freshly published epoch match the reference
        // trie regardless of which lookup backend serves them.
        for batch in packets.chunks(256) {
            let got = conn.lookup(batch).expect("lookup batch");
            for (&addr, nh) in batch.iter().zip(&got) {
                assert_eq!(
                    *nh,
                    reference.lookup(addr).map(|(_, &v)| v),
                    "{backend} backend, addr {addr:#x}"
                );
            }
        }
        // The update plane still converges: backends only change how
        // epochs answer lookups, never what the FIB becomes.
        for batch in updates.chunks(32) {
            conn.send_updates(batch).expect("send updates");
        }
        conn.flush_acks().expect("flush");
        let _ = conn.close().expect("close");
        let report = server.drain().expect("server drains cleanly");
        let mut expect = fib.clone();
        for &u in &updates {
            expect.apply(u);
        }
        assert_eq!(report.final_table, expect, "{backend} backend");
    }
}

#[test]
fn evloop_multiplexes_many_clients_on_one_loop_thread() {
    // The point of the evloop transport: every connection shares one
    // reactor thread (plus the small bridge pool) instead of costing a
    // thread each. A herd of parallel clients doing interleaved lookups
    // and updates must all get correct, exactly-once-acked answers.
    let fib = small_fib(691, 1_000);
    let reference = clue_compress::onrtc(&fib).to_trie();
    let packets = PacketGen::new(692).generate(&fib, 1_024);
    let server = local_server_on(&fib, RouterConfig::default(), Transport::Evloop);
    let addr = server.local_addr().to_string();

    const CLIENTS: usize = 32;
    std::thread::scope(|s| {
        for t in 0..CLIENTS {
            let addr = addr.clone();
            let reference = &reference;
            let packets = &packets;
            s.spawn(move || {
                let mut cfg = ClientConfig::to_addr(addr);
                cfg.initial_backoff = Duration::from_millis(10);
                let mut conn = Connection::connect(cfg).expect("connect");
                // A different slice of the packet trace per client.
                let slice = &packets[t * 16..t * 16 + 64.min(packets.len() - t * 16)];
                for batch in slice.chunks(16) {
                    let got = conn.lookup(batch).expect("lookup");
                    for (&a, nh) in batch.iter().zip(&got) {
                        assert_eq!(*nh, reference.lookup(a).map(|(_, &v)| v), "client {t}");
                    }
                }
                conn.heartbeat().expect("heartbeat");
                let report = conn.close().expect("close");
                assert_eq!(report.reconnects, 0, "client {t}");
            });
        }
    });

    assert_eq!(server.net_stats().accepted(), CLIENTS as u64);
    // Client-side close() returns before the loop has reaped the EOF;
    // give the reactor a moment to retire every connection.
    let deadline = std::time::Instant::now() + Duration::from_secs(5);
    while server.net_stats().active() > 0 && std::time::Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(10));
    }
    assert_eq!(server.net_stats().active(), 0);
    let _ = server.drain().expect("server drains cleanly");
}

#[test]
fn evloop_drain_notifies_idle_connected_clients() {
    // A connected-but-quiet client must receive the Shutdown frame and
    // see the line closed when the server drains out from under it.
    let fib = small_fib(701, 400);
    let server = local_server_on(&fib, RouterConfig::default(), Transport::Evloop);
    let mut raw = TcpStream::connect(server.local_addr()).expect("connect raw");
    raw.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
    Frame::empty(FrameType::Hello, 0)
        .write_to(&mut raw)
        .expect("hello");
    let ack = Frame::read_from(&mut raw).expect("hello ack");
    assert_eq!(ack.kind, FrameType::HelloAck);

    server.request_shutdown();
    let notice = Frame::read_from(&mut raw).expect("shutdown notice");
    assert_eq!(notice.kind, FrameType::Shutdown);
    let mut rest = Vec::new();
    let _ = raw.read_to_end(&mut rest);
    assert!(rest.is_empty(), "line closes after the shutdown notice");
    let _ = server.drain().expect("server drains cleanly");
}
