//! The connection swarm against the evloop server: hundreds of
//! simultaneously-established clients from one reactor, every lookup
//! answered, every update frame acked.

use std::time::Duration;

use clue_fib::gen::FibGen;
use clue_net::{run_swarm, Server, ServerConfig, SwarmConfig, Transport};
use clue_router::RouterConfig;
use clue_traffic::UpdateGen;

fn server_cfg(transport: Transport) -> ServerConfig {
    ServerConfig {
        listen: "127.0.0.1:0".into(),
        router: RouterConfig {
            workers: 2,
            batch_size: 16,
            ..RouterConfig::default()
        },
        idle_poll: Duration::from_millis(5),
        transport,
        ..ServerConfig::default()
    }
}

#[test]
fn swarm_holds_every_connection_open_before_traffic_starts() {
    let table = FibGen::new(41).routes(400).generate();
    let updates = UpdateGen::new(42).generate(&table, 256);
    let addrs: Vec<u32> = table.iter().map(|r| r.prefix.low()).collect();

    let server = Server::start(&table, &server_cfg(Transport::Evloop)).unwrap();
    let cfg = SwarmConfig {
        addr: server.local_addr().to_string(),
        connections: 150,
        lookup_batch: 8,
        rounds: 3,
        updates_per_conn: 4,
        ..SwarmConfig::default()
    };
    let report = run_swarm(&cfg, &addrs, &updates).unwrap();

    assert_eq!(report.dial_failures, 0);
    assert_eq!(report.connected, 150);
    // The swarm holds every handshake until the last dial resolves, so
    // the peak really is all connections at once.
    assert_eq!(report.peak_open, 150);
    assert_eq!(report.errors, 0);
    assert_eq!(report.unfinished, 0);
    assert_eq!(report.lost_answers(), 0);
    assert_eq!(report.lookups_sent, 150 * 3 * 8);
    assert_eq!(report.lost_acks(), 0);
    assert_eq!(report.updates_accepted, 150 * 4);
    assert_eq!(report.updates_dropped, 0);
    assert_eq!(report.lookup_us.len(), 150 * 3);
    assert_eq!(report.ack_us.len(), 150);

    let sreport = server.drain().unwrap();
    assert_eq!(
        sreport.snapshot.updates_received,
        150 * 4,
        "server ingress disagrees with swarm acks"
    );
}

#[test]
fn paced_swarm_throttles_offered_load_without_losing_frames() {
    let table = FibGen::new(47).routes(300).generate();
    let addrs: Vec<u32> = table.iter().map(|r| r.prefix.low()).collect();

    let server = Server::start(&table, &server_cfg(Transport::Evloop)).unwrap();
    let base = SwarmConfig {
        addr: server.local_addr().to_string(),
        connections: 32,
        lookup_batch: 8,
        rounds: 6,
        updates_per_conn: 0,
        ..SwarmConfig::default()
    };
    let blast = run_swarm(&base, &addrs, &[]).unwrap();
    let paced_cfg = SwarmConfig {
        gap: Duration::from_millis(20),
        ..base
    };
    let paced = run_swarm(&paced_cfg, &addrs, &[]).unwrap();
    server.drain().unwrap();

    for r in [&blast, &paced] {
        assert_eq!(r.connected, 32);
        assert_eq!(r.errors, 0);
        assert_eq!(r.unfinished, 0);
        assert_eq!(r.lost_answers(), 0);
        assert_eq!(r.lookups_sent, 32 * 6 * 8);
    }
    // Five 20ms gaps per connection put a floor under the paced run's
    // wall clock that the closed-loop blast comes nowhere near.
    assert!(
        paced.elapsed >= Duration::from_millis(100),
        "pacing did not slow the run: {:?}",
        paced.elapsed
    );
    assert!(
        paced.lookups_per_sec() < blast.lookups_per_sec(),
        "paced rate {:.0}/s not below closed-loop {:.0}/s",
        paced.lookups_per_sec(),
        blast.lookups_per_sec()
    );
}

#[test]
fn swarm_against_threaded_server_is_transport_agnostic() {
    let table = FibGen::new(43).routes(200).generate();
    let addrs: Vec<u32> = table.iter().map(|r| r.prefix.low()).collect();

    let server = Server::start(&table, &server_cfg(Transport::Threads)).unwrap();
    let cfg = SwarmConfig {
        addr: server.local_addr().to_string(),
        connections: 24,
        lookup_batch: 16,
        rounds: 2,
        updates_per_conn: 0,
        ..SwarmConfig::default()
    };
    let report = run_swarm(&cfg, &addrs, &[]).unwrap();

    assert_eq!(report.connected, 24);
    assert_eq!(report.errors, 0);
    assert_eq!(report.lost_answers(), 0);
    assert_eq!(report.lookups_sent, 24 * 2 * 16);
    server.drain().unwrap();
}
