//! Satellite coverage for the incremental frame decoder: byte-at-a-time
//! feeds, adversarial split points (mid-header, mid-payload, mid-CRC),
//! and equivalence with the blocking [`Frame::read_from`] over the
//! shared corruption corpus families (mirroring
//! `crates/store/tests/corruption.rs`).

use std::io::ErrorKind;

use clue_core::codec::encode_updates;
use clue_fib::{NextHop, Prefix, Update};
use clue_net::frame::{FrameDecoder, HEADER_LEN, MAGIC, MAX_PAYLOAD, VERSION};
use clue_net::{Frame, FrameType};

fn sample_frames() -> Vec<Frame> {
    let ops = vec![
        Update::Announce {
            prefix: Prefix::new(0x0A00_0000, 8),
            next_hop: NextHop(7),
        },
        Update::Withdraw {
            prefix: Prefix::new(0xC0A8_0000, 16),
        },
    ];
    vec![
        Frame::empty(FrameType::Hello, 0),
        Frame {
            kind: FrameType::Update,
            seq: 42,
            payload: encode_updates(&ops),
        },
        Frame {
            kind: FrameType::Lookup,
            seq: u64::MAX,
            payload: (0..=255u8).collect(),
        },
        Frame::empty(FrameType::Heartbeat, 7),
    ]
}

fn stream_of(frames: &[Frame]) -> Vec<u8> {
    let mut bytes = Vec::new();
    for f in frames {
        bytes.extend_from_slice(&f.encode());
    }
    bytes
}

/// Decodes the whole input through the incremental decoder, feeding it
/// in `chunk`-byte slices.
fn decode_chunked(bytes: &[u8], chunk: usize) -> std::io::Result<Vec<Frame>> {
    let mut dec = FrameDecoder::new();
    let mut out = Vec::new();
    for slice in bytes.chunks(chunk.max(1)) {
        dec.extend(slice);
        while let Some(f) = dec.poll_frame()? {
            out.push(f);
        }
    }
    Ok(out)
}

#[test]
fn byte_at_a_time_equals_blocking_decode() {
    let frames = sample_frames();
    let bytes = stream_of(&frames);
    let got = decode_chunked(&bytes, 1).expect("valid stream decodes");
    assert_eq!(got, frames);
}

#[test]
fn no_frame_surfaces_before_its_last_byte() {
    // Feed one frame byte-at-a-time and assert the decoder stays
    // silent (Ok(None)) until the final CRC byte lands.
    for frame in sample_frames() {
        let bytes = frame.encode();
        let mut dec = FrameDecoder::new();
        for (i, &b) in bytes.iter().enumerate() {
            dec.extend(&[b]);
            let polled = dec.poll_frame().expect("valid prefix never errors");
            if i + 1 < bytes.len() {
                assert!(polled.is_none(), "frame surfaced early at byte {i}");
            } else {
                assert_eq!(polled, Some(frame.clone()));
            }
        }
    }
}

#[test]
fn every_split_point_is_equivalent() {
    // Adversarial split points over a multi-frame stream: every
    // two-slice split — which sweeps mid-header, mid-payload, and
    // mid-CRC cuts for every frame in the stream — must decode to the
    // same sequence as the blocking reader.
    let frames = sample_frames();
    let bytes = stream_of(&frames);
    let mut blocking = Vec::new();
    {
        let mut r = &bytes[..];
        while let Ok(f) = Frame::read_from(&mut r) {
            blocking.push(f);
        }
    }
    assert_eq!(blocking, frames);

    for cut in 0..=bytes.len() {
        let mut dec = FrameDecoder::new();
        let mut got = Vec::new();
        for slice in [&bytes[..cut], &bytes[cut..]] {
            dec.extend(slice);
            while let Some(f) = dec.poll_frame().expect("valid stream") {
                got.push(f);
            }
        }
        assert_eq!(got, blocking, "split at {cut}");
    }
}

#[test]
fn named_boundary_splits_decode() {
    // The three boundaries the ISSUE calls out, exercised explicitly
    // on a frame with a payload: mid-header, mid-payload, mid-CRC.
    let frame = &sample_frames()[1];
    let bytes = frame.encode();
    let payload_len = frame.payload.len();
    let cuts = [
        ("mid-header", HEADER_LEN / 2),
        ("mid-payload", HEADER_LEN + payload_len / 2),
        ("mid-crc", HEADER_LEN + payload_len + 2),
    ];
    for (label, cut) in cuts {
        assert!(cut < bytes.len(), "case {label}");
        let mut dec = FrameDecoder::new();
        dec.extend(&bytes[..cut]);
        assert_eq!(dec.poll_frame().unwrap(), None, "case {label}: early frame");
        dec.extend(&bytes[cut..]);
        assert_eq!(
            dec.poll_frame().unwrap(),
            Some(frame.clone()),
            "case {label}"
        );
    }
}

#[test]
fn chunk_sizes_sweep_multi_frame_pipelining() {
    let frames = sample_frames();
    let bytes = stream_of(&frames);
    for chunk in [2, 3, 7, 16, HEADER_LEN, 64, 1024] {
        let got = decode_chunked(&bytes, chunk).expect("valid stream");
        assert_eq!(got, frames, "chunk {chunk}");
    }
}

/// The corruption corpus families from `crates/store/tests/corruption.rs`,
/// applied to a frame encoding.
fn corpus(base: &[u8]) -> Vec<(String, Vec<u8>)> {
    let mut out = Vec::new();
    for cut in 0..base.len() {
        out.push((format!("truncate@{cut}"), base[..cut].to_vec()));
    }
    for bit in 0..base.len() * 8 {
        let mut b = base.to_vec();
        b[bit / 8] ^= 1 << (bit % 8);
        out.push((format!("bitflip@{bit}"), b));
    }
    for at in (0..base.len().saturating_sub(4)).step_by(4) {
        let mut b = base.to_vec();
        b[at..at + 4].copy_from_slice(&u32::MAX.to_be_bytes());
        out.push((format!("hugelen@{at}"), b));
        let mut b = base.to_vec();
        b[at..at + 4].copy_from_slice(&0x7FFF_FFFFu32.to_be_bytes());
        out.push((format!("biglen@{at}"), b));
    }
    let mut padded = base.to_vec();
    padded.extend_from_slice(&[0xAA; 16]);
    out.push(("trailing-garbage".into(), padded));
    out
}

#[test]
fn corpus_equivalence_with_blocking_decoder() {
    // For every corpus case, the incremental decoder must agree with
    // the blocking reader on the first frame: same frame on success;
    // on failure, blocking InvalidData maps to incremental Err and
    // blocking UnexpectedEof (a truncated buffer) maps to "still
    // waiting for bytes" (Ok(None)).
    let good = Frame {
        kind: FrameType::Update,
        seq: 9,
        payload: encode_updates(&[Update::Withdraw {
            prefix: Prefix::new(0x0A00_0000, 8),
        }]),
    }
    .encode();

    for (label, bytes) in corpus(&good) {
        let blocking = Frame::read_from(&mut &bytes[..]);
        let incremental = Frame::try_decode(&bytes);
        match blocking {
            Ok(frame) => {
                let (got, used) = incremental
                    .unwrap_or_else(|e| panic!("case {label}: incremental errored: {e}"))
                    .unwrap_or_else(|| panic!("case {label}: incremental starved"));
                assert_eq!(got, frame, "case {label}");
                assert_eq!(used, good.len(), "case {label}");
            }
            Err(e) if e.kind() == ErrorKind::UnexpectedEof => {
                // Truncation: the incremental decoder either waits for
                // more bytes or has already proven the prefix invalid
                // (it validates magic/version/type/len before the
                // blocking reader finishes its reads) — both are
                // consistent with a stream that died mid-frame.
                if let Err(ie) = incremental {
                    assert_eq!(ie.kind(), ErrorKind::InvalidData, "case {label}");
                } else {
                    assert_eq!(incremental.unwrap(), None, "case {label}");
                }
            }
            Err(e) => {
                assert_eq!(e.kind(), ErrorKind::InvalidData, "case {label}: {e}");
                let ie = incremental.expect_err(&format!(
                    "case {label}: blocking rejected but incremental accepted"
                ));
                assert_eq!(ie.kind(), ErrorKind::InvalidData, "case {label}");
            }
        }
    }
}

/// A well-formed 18-byte header claiming a `len`-byte payload (no
/// payload or CRC attached).
fn forged_header(len: u32) -> Vec<u8> {
    let mut h = Vec::with_capacity(HEADER_LEN);
    h.extend_from_slice(&MAGIC.to_be_bytes());
    h.push(VERSION);
    h.push(FrameType::Lookup as u8);
    h.extend_from_slice(&77u64.to_be_bytes());
    h.extend_from_slice(&len.to_be_bytes());
    h
}

#[test]
fn exactly_max_payload_is_accepted() {
    // The boundary itself must work: a frame whose payload is exactly
    // MAX_PAYLOAD round-trips through the incremental decoder.
    let frame = Frame {
        kind: FrameType::StatsReply,
        seq: 3,
        payload: vec![0x5A; MAX_PAYLOAD as usize],
    };
    let bytes = frame.encode();
    let mut dec = FrameDecoder::new();
    dec.extend(&bytes);
    let got = dec
        .poll_frame()
        .expect("max-size frame decodes")
        .expect("frame complete");
    assert_eq!(got.kind, frame.kind);
    assert_eq!(got.payload.len(), MAX_PAYLOAD as usize);
    assert_eq!(got, frame);
    assert_eq!(dec.poll_frame().unwrap(), None, "no residue");
}

#[test]
fn max_plus_one_is_rejected_from_the_header_alone() {
    // A forged length of MAX_PAYLOAD + 1 must be rejected the moment
    // the 18-byte header is complete — before any payload arrives, so
    // the decoder never allocates the claimed 16 MiB + 1.
    let mut dec = FrameDecoder::new();
    dec.extend(&forged_header(MAX_PAYLOAD + 1));
    let err = dec
        .poll_frame()
        .expect_err("oversize length must fail with only the header buffered");
    assert_eq!(err.kind(), ErrorKind::InvalidData);
    assert!(
        dec.buffered() <= HEADER_LEN,
        "decoder buffered {} bytes for a frame it rejected",
        dec.buffered()
    );
    // Same rejection from the blocking one-shot path.
    let err = Frame::try_decode(&forged_header(MAX_PAYLOAD + 1))
        .expect_err("try_decode must reject an oversize header");
    assert_eq!(err.kind(), ErrorKind::InvalidData);
    // u32::MAX — the classic corrupt-length pattern — likewise.
    assert!(Frame::try_decode(&forged_header(u32::MAX)).is_err());
}

#[test]
fn truncated_length_header_fuzz_corpus() {
    // Every proper prefix of a header carrying each interesting length
    // value: the decoder must either wait for more bytes (Ok(None)) or
    // reject cleanly (InvalidData) — never panic, never surface a
    // frame. The full oversize header must reject; the full max-size
    // header must keep waiting for its payload.
    let lengths = [
        0,
        1,
        MAX_PAYLOAD - 1,
        MAX_PAYLOAD,
        MAX_PAYLOAD + 1,
        0x7FFF_FFFF,
        u32::MAX,
    ];
    for len in lengths {
        let header = forged_header(len);
        for cut in 0..header.len() {
            let mut dec = FrameDecoder::new();
            dec.extend(&header[..cut]);
            match dec.poll_frame() {
                Ok(None) => {}
                Ok(Some(f)) => panic!("len {len} cut {cut}: phantom frame {f:?}"),
                Err(e) => assert_eq!(
                    e.kind(),
                    ErrorKind::InvalidData,
                    "len {len} cut {cut}: wrong error kind"
                ),
            }
        }
        let mut dec = FrameDecoder::new();
        dec.extend(&header);
        let polled = dec.poll_frame();
        if len > MAX_PAYLOAD {
            assert!(polled.is_err(), "len {len}: oversize header accepted");
        } else {
            assert_eq!(
                polled.expect("in-range length header is a valid prefix"),
                None,
                "len {len}: frame surfaced without payload"
            );
        }
    }
}

#[test]
fn decode_errors_are_sticky() {
    let mut dec = FrameDecoder::new();
    dec.extend(b"garbage that is not a frame");
    assert!(dec.poll_frame().is_err());
    // Even after "good" bytes arrive, the stream stays dead — framing
    // is unrecoverable, matching the blocking path's connection-fatal
    // handling.
    dec.extend(&Frame::empty(FrameType::Hello, 1).encode());
    assert!(dec.poll_frame().is_err());
}
