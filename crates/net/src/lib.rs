//! `clue-net` — the networked face of the CLUE router: a binary wire
//! protocol, a TCP server bridging it into [`clue_router`], a
//! reconnecting client, and a load generator.
//!
//! The design goal is that *backpressure propagates to the wire*: the
//! router's bounded ingress already chooses between blocking and
//! counted drops ([`clue_router::OverflowPolicy`]); the server maps that
//! seam onto TCP by doing router calls on the connection's own reader
//! thread, so a full ingress stalls the socket and the peer's TCP
//! window closes (see [`server`]). Every frame is length-prefixed and
//! CRC-checked ([`frame`]), updates are sequenced and acknowledged, and
//! the client resumes a broken line from the last acked seq
//! ([`client`]) — safe because route updates are last-op-wins per
//! prefix.
//!
//! Modules:
//!
//! * [`crc`] — hand-rolled CRC-32 (IEEE) with a compile-time table;
//! * [`frame`] — the `magic/version/type/seq/len/payload/crc` frame;
//! * [`wire`] — payload codecs for updates, lookups, acks, stats;
//! * [`stats`] — network-plane counters with a per-connection ledger;
//! * [`server`] — accept loop + per-connection threads over one
//!   [`clue_router::RouterService`], graceful drain;
//! * [`client`] — heartbeats, timeouts, capped-exponential reconnect
//!   with seq/ack resume;
//! * [`loadgen`] — multi-threaded paced replay of `clue-traffic`
//!   workloads;
//! * [`swarm`] — a reactor-multiplexed connection swarm holding
//!   thousands of clients open simultaneously (the `--connections`
//!   load mode);
//! * [`signal`] — SIGINT/SIGTERM to a pollable flag, dependency-free.

#![warn(missing_docs)]

pub mod client;
pub mod crc;
mod evserver;
pub mod frame;
pub mod loadgen;
pub mod server;
pub mod signal;
pub mod stats;
pub mod swarm;
pub mod wire;

pub use client::{ClientConfig, ClientReport, Connection};
pub use frame::{Frame, FrameDecoder, FrameType};
pub use loadgen::{run_load, LoadConfig, LoadReport};
pub use server::{Server, ServerConfig, Transport};
pub use stats::NetStats;
pub use swarm::{run_swarm, SwarmConfig, SwarmReport};
pub use wire::UpdateAck;
