//! Multi-threaded load generator: replays a `clue-traffic` workload
//! (packet trace + update trace) against a server at a target offered
//! rate.
//!
//! One thread owns the update stream — updates must stay ordered per
//! prefix, and a single TCP connection preserves order end to end —
//! while the packet trace is split into contiguous slices across
//! `lookup_threads` connections. Each thread paces itself with a
//! [`Pacer`], so the *offered* rate holds even when the server pushes
//! back (a blocked send simply leaves the pacer behind schedule and it
//! catches up without sleeping).

use std::io;
use std::time::{Duration, Instant};

use clue_fib::Update;
use clue_traffic::workload::Pacer;

use crate::client::{ClientConfig, Connection};

/// Load generator knobs.
#[derive(Debug, Clone)]
pub struct LoadConfig {
    /// Connection settings (address, timeouts, reconnect policy).
    pub client: ClientConfig,
    /// Number of concurrent lookup connections.
    pub lookup_threads: usize,
    /// Addresses per lookup frame.
    pub lookup_batch: usize,
    /// Updates per update frame.
    pub update_batch: usize,
    /// Target offered lookup rate, addresses/second across all threads
    /// (0 = unlimited).
    pub lookup_rate: f64,
    /// Target offered update rate, updates/second (0 = unlimited).
    pub update_rate: f64,
}

impl Default for LoadConfig {
    fn default() -> Self {
        LoadConfig {
            client: ClientConfig::default(),
            lookup_threads: 2,
            lookup_batch: 64,
            update_batch: 32,
            lookup_rate: 0.0,
            update_rate: 0.0,
        }
    }
}

/// What a load run did, with achieved rates.
#[derive(Debug, Clone, Default)]
pub struct LoadReport {
    /// Addresses sent in lookup frames.
    pub lookups_sent: u64,
    /// Answers received (equal to `lookups_sent` on a clean run).
    pub lookups_answered: u64,
    /// Answers with no matching route.
    pub lookup_misses: u64,
    /// Updates submitted over the wire.
    pub updates_sent: u64,
    /// Updates the server acked as accepted.
    pub updates_accepted: u64,
    /// Updates the server acked as dropped (`DropNewest`).
    pub updates_dropped: u64,
    /// Reconnects across every connection.
    pub reconnects: u64,
    /// Workers whose initial dial failed (their slice of the workload
    /// went unoffered; the rest of the run continued).
    pub dial_errors: u64,
    /// Wall-clock duration of the run.
    pub elapsed: Duration,
    /// Achieved lookup rate, addresses/second.
    pub achieved_lookup_rate: f64,
    /// Achieved update rate, updates/second.
    pub achieved_update_rate: f64,
}

impl LoadReport {
    /// Renders the report as one JSON object.
    #[must_use]
    pub fn to_json(&self) -> String {
        format!(
            "{{\"lookups_sent\":{},\"lookups_answered\":{},\"lookup_misses\":{},\
             \"updates_sent\":{},\"updates_accepted\":{},\"updates_dropped\":{},\
             \"reconnects\":{},\"dial_errors\":{},\"elapsed_ms\":{},\
             \"achieved_lookup_rate\":{:.1},\"achieved_update_rate\":{:.1}}}",
            self.lookups_sent,
            self.lookups_answered,
            self.lookup_misses,
            self.updates_sent,
            self.updates_accepted,
            self.updates_dropped,
            self.reconnects,
            self.dial_errors,
            self.elapsed.as_millis(),
            self.achieved_lookup_rate,
            self.achieved_update_rate,
        )
    }
}

#[derive(Default)]
struct LookupTally {
    sent: u64,
    answered: u64,
    misses: u64,
    reconnects: u64,
    dial_errors: u64,
}

#[derive(Default)]
struct UpdateTally {
    sent: u64,
    accepted: u64,
    dropped: u64,
    reconnects: u64,
    dial_errors: u64,
}

/// Replays `packets` and `updates` against `cfg.client.addr`.
///
/// A worker whose *initial* dial fails (past the connection's own
/// retry budget) is counted in [`LoadReport::dial_errors`] and its
/// slice of the workload is skipped — the rest of the run continues,
/// so a server that caps concurrent connections still yields a report
/// instead of aborting the whole offer.
///
/// # Errors
///
/// Fails if an *established* connection dies beyond its reconnect
/// budget; partial progress is discarded.
pub fn run_load(packets: &[u32], updates: &[Update], cfg: &LoadConfig) -> io::Result<LoadReport> {
    let start = Instant::now();
    let threads = cfg.lookup_threads.max(1);
    let per_thread_rate = cfg.lookup_rate / threads as f64;

    let (update_res, lookup_res) = std::thread::scope(|s| {
        let update_handle = (!updates.is_empty()).then(|| s.spawn(|| update_worker(updates, cfg)));
        let lookup_handles: Vec<_> = if packets.is_empty() {
            Vec::new()
        } else {
            let chunk = packets.len().div_ceil(threads).max(1);
            packets
                .chunks(chunk)
                .map(|slice| s.spawn(move || lookup_worker(slice, cfg, per_thread_rate)))
                .collect()
        };
        let update_res = update_handle.map(|h| h.join().expect("update worker exits"));
        let lookup_res: Vec<_> = lookup_handles
            .into_iter()
            .map(|h| h.join().expect("lookup worker exits"))
            .collect();
        (update_res, lookup_res)
    });

    let mut report = LoadReport {
        elapsed: start.elapsed(),
        ..LoadReport::default()
    };
    if let Some(res) = update_res {
        let t = res?;
        report.updates_sent = t.sent;
        report.updates_accepted = t.accepted;
        report.updates_dropped = t.dropped;
        report.reconnects += t.reconnects;
        report.dial_errors += t.dial_errors;
    }
    for res in lookup_res {
        let t = res?;
        report.lookups_sent += t.sent;
        report.lookups_answered += t.answered;
        report.lookup_misses += t.misses;
        report.reconnects += t.reconnects;
        report.dial_errors += t.dial_errors;
    }
    let secs = report.elapsed.as_secs_f64().max(1e-9);
    report.achieved_lookup_rate = report.lookups_answered as f64 / secs;
    report.achieved_update_rate = report.updates_sent as f64 / secs;
    Ok(report)
}

fn update_worker(updates: &[Update], cfg: &LoadConfig) -> io::Result<UpdateTally> {
    let mut conn = match Connection::connect(cfg.client.clone()) {
        Ok(conn) => conn,
        Err(_) => {
            return Ok(UpdateTally {
                dial_errors: 1,
                ..UpdateTally::default()
            })
        }
    };
    let mut pacer = Pacer::new(cfg.update_rate);
    let mut sent = 0u64;
    for batch in updates.chunks(cfg.update_batch.max(1)) {
        let mut wait = Duration::ZERO;
        for _ in batch {
            wait += pacer.next_delay();
        }
        if !wait.is_zero() {
            std::thread::sleep(wait);
        }
        conn.send_updates(batch)?;
        sent += batch.len() as u64;
        conn.maybe_heartbeat()?;
    }
    let report = conn.close()?;
    Ok(UpdateTally {
        sent,
        accepted: report.accepted,
        dropped: report.dropped,
        reconnects: report.reconnects,
        dial_errors: 0,
    })
}

fn lookup_worker(packets: &[u32], cfg: &LoadConfig, rate: f64) -> io::Result<LookupTally> {
    let mut conn = match Connection::connect(cfg.client.clone()) {
        Ok(conn) => conn,
        Err(_) => {
            return Ok(LookupTally {
                dial_errors: 1,
                ..LookupTally::default()
            })
        }
    };
    let mut pacer = Pacer::new(rate);
    let mut tally = LookupTally::default();
    for batch in packets.chunks(cfg.lookup_batch.max(1)) {
        let mut wait = Duration::ZERO;
        for _ in batch {
            wait += pacer.next_delay();
        }
        if !wait.is_zero() {
            std::thread::sleep(wait);
        }
        tally.sent += batch.len() as u64;
        let results = conn.lookup(batch)?;
        tally.answered += results.len() as u64;
        tally.misses += results.iter().filter(|r| r.is_none()).count() as u64;
    }
    tally.reconnects = conn.reconnects();
    let _ = conn.close()?;
    Ok(tally)
}
