//! A many-connection client swarm multiplexed on one `clue-aio`
//! reactor — the client-side counterpart of the evloop server.
//!
//! Where [`loadgen`](crate::loadgen) measures throughput with a
//! handful of pipelined threads, the swarm measures *connection
//! scale*: thousands of concurrent clients from one process, each
//! holding an open socket, speaking the full `Hello`/lookup/update/
//! `Shutdown` protocol with one frame in flight, and recording
//! per-frame round-trip latency. A dialer thread performs the blocking
//! connects and injects each socket into the loop, where the driver
//! adopts it ([`Ctl::adopt`]).
//!
//! By default every connection completes its handshake *before* any
//! traffic starts, so the reported `peak_open` really means that many
//! simultaneously-established clients — the number the connections
//! bench headlines.

use std::collections::HashMap;
use std::io;
use std::net::{SocketAddr, TcpStream, ToSocketAddrs};
use std::time::{Duration, Instant};

use clue_aio::{rlimit, CloseReason, ConnId, Ctl, Driver, EventLoop, LoopConfig};
use clue_fib::Update;

use crate::frame::{Frame, FrameDecoder, FrameType};
use crate::wire;

/// Overall-deadline timer tag.
const DEADLINE: u64 = 1;

/// Swarm knobs.
#[derive(Debug, Clone)]
pub struct SwarmConfig {
    /// Server address.
    pub addr: String,
    /// Concurrent connections to establish.
    pub connections: usize,
    /// Addresses per lookup frame.
    pub lookup_batch: usize,
    /// Lookup frames each connection sends (0 = none).
    pub rounds: usize,
    /// Updates each connection sends as one batch after its lookups
    /// (0 = none).
    pub updates_per_conn: usize,
    /// Pause between a connection's lookup answer and its next frame.
    /// `Duration::ZERO` (the default) is the closed-loop blast every
    /// scaling point uses; a nonzero gap turns the swarm into an
    /// open(ish)-loop source offering roughly
    /// `connections × lookup_batch / gap` lookups per second, which the
    /// connections bench sweeps against the achieved rate.
    pub gap: Duration,
    /// Per-connect timeout (the dialer retries refused connects while
    /// the listener's backlog drains).
    pub connect_timeout: Duration,
    /// Whole-run deadline; connections still open when it fires are
    /// counted as `unfinished`.
    pub deadline: Duration,
}

impl Default for SwarmConfig {
    fn default() -> Self {
        SwarmConfig {
            addr: String::new(),
            connections: 64,
            lookup_batch: 16,
            rounds: 4,
            updates_per_conn: 0,
            gap: Duration::ZERO,
            connect_timeout: Duration::from_secs(2),
            deadline: Duration::from_secs(120),
        }
    }
}

/// What the swarm observed.
#[derive(Debug, Clone, Default)]
pub struct SwarmReport {
    /// Connections that completed the `Hello` handshake.
    pub connected: usize,
    /// Most connections simultaneously open.
    pub peak_open: usize,
    /// Connects that failed past the dialer's retry budget.
    pub dial_failures: u64,
    /// Addresses sent in lookup frames.
    pub lookups_sent: u64,
    /// Addresses answered.
    pub lookups_answered: u64,
    /// Update frames sent.
    pub update_frames: u64,
    /// Update frames acked.
    pub update_acks: u64,
    /// Updates acked as accepted.
    pub updates_accepted: u64,
    /// Updates acked as dropped (`DropNewest`).
    pub updates_dropped: u64,
    /// Error frames received plus connections lost to I/O errors.
    pub errors: u64,
    /// Connections still open when the deadline fired.
    pub unfinished: usize,
    /// Wall-clock duration of the run.
    pub elapsed: Duration,
    /// Per-lookup-frame round trips, microseconds (unsorted).
    pub lookup_us: Vec<u64>,
    /// Per-update-frame ack round trips, microseconds (unsorted).
    pub ack_us: Vec<u64>,
}

/// The `q`-th percentile (0..=100) of `samples`, or 0.0 when empty.
#[must_use]
pub fn percentile_us(samples: &[u64], q: f64) -> f64 {
    if samples.is_empty() {
        return 0.0;
    }
    let mut sorted = samples.to_vec();
    sorted.sort_unstable();
    let rank = (q / 100.0 * (sorted.len() - 1) as f64).round() as usize;
    sorted[rank.min(sorted.len() - 1)] as f64
}

impl SwarmReport {
    /// Answered lookups per second over the whole run.
    #[must_use]
    pub fn lookups_per_sec(&self) -> f64 {
        self.lookups_answered as f64 / self.elapsed.as_secs_f64().max(1e-9)
    }

    /// Lookup round trips the swarm failed to observe (sent but never
    /// answered) — must be zero on a clean run.
    #[must_use]
    pub fn lost_answers(&self) -> u64 {
        self.lookups_sent.saturating_sub(self.lookups_answered)
    }

    /// Update frames that were never acked — must be zero on a clean
    /// run.
    #[must_use]
    pub fn lost_acks(&self) -> u64 {
        self.update_frames.saturating_sub(self.update_acks)
    }

    /// Renders the report as one JSON object (latency percentiles, not
    /// raw samples).
    #[must_use]
    pub fn to_json(&self) -> String {
        format!(
            "{{\"connected\":{},\"peak_open\":{},\"dial_failures\":{},\
             \"lookups_sent\":{},\"lookups_answered\":{},\"lookups_per_sec\":{:.1},\
             \"lookup_p50_us\":{:.1},\"lookup_p99_us\":{:.1},\
             \"update_frames\":{},\"update_acks\":{},\
             \"updates_accepted\":{},\"updates_dropped\":{},\
             \"ack_p50_us\":{:.1},\"ack_p99_us\":{:.1},\
             \"errors\":{},\"unfinished\":{},\"elapsed_ms\":{}}}",
            self.connected,
            self.peak_open,
            self.dial_failures,
            self.lookups_sent,
            self.lookups_answered,
            self.lookups_per_sec(),
            percentile_us(&self.lookup_us, 50.0),
            percentile_us(&self.lookup_us, 99.0),
            self.update_frames,
            self.update_acks,
            self.updates_accepted,
            self.updates_dropped,
            percentile_us(&self.ack_us, 50.0),
            percentile_us(&self.ack_us, 99.0),
            self.errors,
            self.unfinished,
            self.elapsed.as_millis(),
        )
    }
}

/// Messages the dialer thread injects.
enum Msg {
    Dialed(TcpStream),
    DialFailed,
}

/// Where one connection is in its scripted life.
enum Phase {
    /// `Hello` sent, ack pending.
    Hello,
    /// Handshake done, parked until every connection is up.
    Parked,
    /// Lookup frame for this round in flight.
    Lookup { round: usize, sent_at: Instant },
    /// The update frame is in flight.
    Update { sent_at: Instant },
}

struct ConnState {
    index: usize,
    decoder: FrameDecoder,
    phase: Phase,
}

struct SwarmDriver {
    cfg: SwarmConfig,
    addrs: Vec<u32>,
    updates: Vec<Update>,
    conns: HashMap<ConnId, ConnState>,
    dialed: usize,
    next_index: usize,
    /// Pacing timers in flight: tag → the connection and round to
    /// advance when it fires. Tags start past `DEADLINE`.
    paced: HashMap<u64, (ConnId, usize)>,
    next_tag: u64,
    report: SwarmReport,
}

impl SwarmDriver {
    fn dial_done(&self) -> bool {
        self.dialed + self.report.dial_failures as usize >= self.cfg.connections
    }

    /// This connection's address batch for `round`, rotated so the
    /// swarm sweeps the whole trace.
    fn batch(&self, index: usize, round: usize) -> Vec<u32> {
        let b = self.cfg.lookup_batch.max(1);
        let start = (index * b + round * b * self.cfg.connections) % self.addrs.len();
        (0..b)
            .map(|k| self.addrs[(start + k) % self.addrs.len()])
            .collect()
    }

    fn update_batch(&self, index: usize) -> Vec<Update> {
        let n = self.cfg.updates_per_conn;
        let start = (index * n) % self.updates.len();
        (0..n)
            .map(|k| self.updates[(start + k) % self.updates.len()])
            .collect()
    }

    /// Sends the next scripted frame for `conn`, or closes it when the
    /// script is finished.
    fn advance(&mut self, ctl: &mut Ctl<'_, Msg>, conn: ConnId, round: usize) {
        let Some(state) = self.conns.get_mut(&conn) else {
            return;
        };
        let index = state.index;
        if round < self.cfg.rounds && !self.addrs.is_empty() {
            let batch = self.batch(index, round);
            let frame = Frame {
                kind: FrameType::Lookup,
                seq: round as u64 + 1,
                payload: wire::encode_lookup(&batch),
            };
            self.report.lookups_sent += batch.len() as u64;
            let state = self.conns.get_mut(&conn).expect("checked above");
            state.phase = Phase::Lookup {
                round,
                sent_at: Instant::now(),
            };
            ctl.send(conn, &frame.encode());
        } else if self.cfg.updates_per_conn > 0 && !self.updates.is_empty() {
            let batch = self.update_batch(index);
            let frame = Frame {
                kind: FrameType::Update,
                seq: index as u64 + 1,
                payload: wire::encode_updates(&batch),
            };
            self.report.update_frames += 1;
            let state = self.conns.get_mut(&conn).expect("checked above");
            state.phase = Phase::Update {
                sent_at: Instant::now(),
            };
            ctl.send(conn, &frame.encode());
        } else {
            ctl.send(conn, &Frame::empty(FrameType::Shutdown, 0).encode());
            ctl.close(conn);
        }
    }

    /// Releases every parked connection once the last dial resolves.
    fn release_parked(&mut self, ctl: &mut Ctl<'_, Msg>) {
        if !self.dial_done() {
            return;
        }
        let parked: Vec<ConnId> = self
            .conns
            .iter()
            .filter(|(_, s)| matches!(s.phase, Phase::Parked))
            .map(|(&c, _)| c)
            .collect();
        for conn in parked {
            self.advance(ctl, conn, 0);
        }
    }

    fn maybe_stop(&mut self, ctl: &mut Ctl<'_, Msg>) {
        if self.dial_done() && ctl.conn_count() == 0 {
            ctl.stop();
        }
    }

    fn on_frame(&mut self, ctl: &mut Ctl<'_, Msg>, conn: ConnId, frame: &Frame) {
        let dial_done = self.dial_done();
        let Some(state) = self.conns.get_mut(&conn) else {
            return;
        };
        match frame.kind {
            FrameType::HelloAck => {
                self.report.connected += 1;
                if dial_done {
                    self.advance(ctl, conn, 0);
                } else {
                    state.phase = Phase::Parked;
                }
            }
            FrameType::LookupResult => {
                let Phase::Lookup { round, sent_at } = state.phase else {
                    self.report.errors += 1;
                    ctl.close(conn);
                    return;
                };
                let answered = wire::decode_results(&frame.payload)
                    .map(|r| r.len() as u64)
                    .unwrap_or(0);
                self.report.lookups_answered += answered;
                self.report
                    .lookup_us
                    .push(sent_at.elapsed().as_micros() as u64);
                if self.cfg.gap.is_zero() {
                    self.advance(ctl, conn, round + 1);
                } else {
                    // Open-loop pacing: park the connection on a timer
                    // instead of firing the next frame off the ack.
                    let tag = self.next_tag;
                    self.next_tag += 1;
                    self.paced.insert(tag, (conn, round + 1));
                    ctl.set_timer(self.cfg.gap, tag);
                }
            }
            FrameType::UpdateAck => {
                let Phase::Update { sent_at } = state.phase else {
                    self.report.errors += 1;
                    ctl.close(conn);
                    return;
                };
                self.report.update_acks += 1;
                self.report
                    .ack_us
                    .push(sent_at.elapsed().as_micros() as u64);
                if let Ok(ack) = wire::decode_ack(&frame.payload) {
                    self.report.updates_accepted += u64::from(ack.accepted);
                    self.report.updates_dropped += u64::from(ack.dropped);
                }
                ctl.send(conn, &Frame::empty(FrameType::Shutdown, 0).encode());
                ctl.close(conn);
            }
            FrameType::HeartbeatAck => {}
            FrameType::Shutdown => ctl.close(conn),
            FrameType::Error => {
                self.report.errors += 1;
                ctl.close(conn);
            }
            _ => {
                self.report.errors += 1;
                ctl.close(conn);
            }
        }
    }
}

impl Driver for SwarmDriver {
    type Msg = Msg;

    fn on_data(&mut self, ctl: &mut Ctl<'_, Msg>, conn: ConnId, buf: &mut Vec<u8>) {
        if let Some(state) = self.conns.get_mut(&conn) {
            state.decoder.extend(buf);
        }
        buf.clear();
        loop {
            let Some(state) = self.conns.get_mut(&conn) else {
                return;
            };
            match state.decoder.poll_frame() {
                Ok(Some(frame)) => self.on_frame(ctl, conn, &frame),
                Ok(None) => return,
                Err(_) => {
                    self.report.errors += 1;
                    ctl.close(conn);
                    return;
                }
            }
        }
    }

    fn on_close(&mut self, ctl: &mut Ctl<'_, Msg>, conn: ConnId, reason: &CloseReason) {
        if self.conns.remove(&conn).is_some() && matches!(reason, CloseReason::Err(_)) {
            self.report.errors += 1;
        }
        self.maybe_stop(ctl);
    }

    fn on_msg(&mut self, ctl: &mut Ctl<'_, Msg>, msg: Msg) {
        match msg {
            Msg::Dialed(stream) => {
                self.dialed += 1;
                match ctl.adopt(stream) {
                    Ok(conn) => {
                        let index = self.next_index;
                        self.next_index += 1;
                        self.conns.insert(
                            conn,
                            ConnState {
                                index,
                                decoder: FrameDecoder::new(),
                                phase: Phase::Hello,
                            },
                        );
                        self.report.peak_open = self.report.peak_open.max(ctl.conn_count());
                        let hello = Frame {
                            kind: FrameType::Hello,
                            seq: 0,
                            payload: wire::encode_u64(0),
                        };
                        ctl.send(conn, &hello.encode());
                    }
                    Err(_) => self.report.dial_failures += 1,
                }
            }
            Msg::DialFailed => self.report.dial_failures += 1,
        }
        self.release_parked(ctl);
        self.maybe_stop(ctl);
    }

    fn on_timer(&mut self, ctl: &mut Ctl<'_, Msg>, tag: u64) {
        if tag == DEADLINE {
            self.report.unfinished = self.conns.len();
            ctl.stop();
        } else if let Some((conn, round)) = self.paced.remove(&tag) {
            // `advance` tolerates a connection that closed while its
            // pacing timer was pending (generation-tagged ids never
            // alias a reused slot).
            self.advance(ctl, conn, round);
        }
    }
}

/// Dials `n` sockets, retrying refused connects (the listener's accept
/// backlog is finite) with a small linear backoff.
fn dialer(addr: &SocketAddr, n: usize, timeout: Duration, handle: &clue_aio::LoopHandle<Msg>) {
    for _ in 0..n {
        let mut dialed = false;
        for attempt in 0..40u32 {
            if attempt > 0 {
                std::thread::sleep(Duration::from_millis(u64::from(attempt.min(20))));
            }
            match TcpStream::connect_timeout(addr, timeout) {
                Ok(stream) => {
                    let _ = stream.set_nodelay(true);
                    if !handle.send(Msg::Dialed(stream)) {
                        return;
                    }
                    dialed = true;
                    break;
                }
                Err(_) => continue,
            }
        }
        if !dialed && !handle.send(Msg::DialFailed) {
            return;
        }
    }
}

/// Runs the swarm: `cfg.connections` clients established first, then
/// each runs its lookup rounds (and optional update batch) to
/// completion.
///
/// # Errors
///
/// Address resolution and reactor-creation failures. Per-connection
/// failures are counted in the report, not returned.
pub fn run_swarm(cfg: &SwarmConfig, addrs: &[u32], updates: &[Update]) -> io::Result<SwarmReport> {
    let target: SocketAddr = cfg
        .addr
        .to_socket_addrs()?
        .next()
        .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidInput, "unresolvable address"))?;
    // One fd per swarm socket (plus the poller/waker overhead, plus the
    // server when it shares the process, as the bench's does).
    rlimit::raise_nofile(cfg.connections as u64 * 2 + 512);

    let driver = SwarmDriver {
        cfg: cfg.clone(),
        addrs: addrs.to_vec(),
        updates: updates.to_vec(),
        conns: HashMap::new(),
        dialed: 0,
        next_index: 0,
        paced: HashMap::new(),
        next_tag: DEADLINE + 1,
        report: SwarmReport::default(),
    };
    let mut el = EventLoop::new(driver, LoopConfig::default())?;
    el.set_timer(cfg.deadline, DEADLINE);
    let handle = el.handle();
    let n = cfg.connections;
    let timeout = cfg.connect_timeout;
    let dial_thread = std::thread::spawn(move || dialer(&target, n, timeout, &handle));

    let started = Instant::now();
    let driver = el.run()?;
    let _ = dial_thread.join();
    let mut report = driver.report;
    report.elapsed = started.elapsed();
    Ok(report)
}
