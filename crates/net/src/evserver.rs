//! The event-loop transport: every connection multiplexed onto one
//! `clue-aio` reactor thread, with a small *bridge pool* of worker
//! threads for the blocking router calls.
//!
//! Semantics parity with the threaded transport is the whole point —
//! the oracle checks them, so the mapping is explicit:
//!
//! * **One frame in flight per connection.** The threaded server reads
//!   a frame, performs the router call, writes the reply, and only then
//!   reads again. Here, dispatching a frame to the bridge pool pauses
//!   the connection ([`Ctl::pause`] drops read interest), and the
//!   completion resumes it — so under
//!   [`OverflowPolicy::Block`](clue_router::OverflowPolicy) a blocked
//!   `submit_update` stops the socket from draining, the kernel buffer
//!   fills, and the peer's TCP window closes, exactly as before.
//! * **Cheap frames stay on the loop.** `Hello`, `Heartbeat`, and
//!   `Shutdown` never touch the router; they are answered inline.
//! * **Acks are computed on the worker** — including the journal-gated
//!   ack wait and the `last_acked` high-water bump — so exactly-once
//!   resume semantics are byte-identical to the threaded path.
//! * **Graceful drain**: stop listening, tell every idle connection
//!   `Shutdown` and flush-close it, let in-flight router calls finish
//!   (their completions close the line), and stop the loop when the
//!   last connection leaves — with a grace deadline as a backstop.
//!
//! The shutdown flag is polled on a loop timer (tag [`TICK`]) so that
//! external flag writers (signal watchers holding
//! [`Server::shutdown_flag`](crate::Server::shutdown_flag)) drain the
//! server even though they cannot send a loop message.

use std::collections::HashMap;
use std::io;
use std::net::{SocketAddr, TcpListener};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use clue_aio::{CloseReason, ConnId, Ctl, Driver, EventLoop, LoopConfig, LoopHandle};
use clue_router::{RouterService, SubmitOutcome};
use crossbeam::channel::{self, Receiver, Sender};

use crate::frame::{Frame, FrameDecoder, FrameType};
use crate::server::ServerConfig;
use crate::stats::NetStats;
use crate::wire;

/// Periodic shutdown-flag poll.
const TICK: u64 = 1;
/// Drain-grace deadline: force-stop the loop if in-flight work wedges.
const DRAIN_GRACE: u64 = 2;

/// Messages injected into the loop from other threads.
pub(crate) enum EvMsg {
    /// A bridge worker finished the router call for `conn`.
    Done {
        /// The connection the reply belongs to.
        conn: ConnId,
        /// The reply frame; `FrameType::Error` closes the line after
        /// the write flushes, mirroring the threaded transport.
        reply: Frame,
    },
    /// Begin the graceful drain.
    Shutdown,
}

/// One frame's worth of blocking work, shipped to the bridge pool.
struct Job {
    conn: ConnId,
    net_id: u64,
    frame: Frame,
}

/// Per-connection driver state.
struct ConnState {
    net_id: u64,
    decoder: FrameDecoder,
    /// A job for this connection is on the bridge pool; reads are
    /// paused and no further frame is dispatched until it completes.
    in_flight: bool,
}

struct EvServer {
    cfg: ServerConfig,
    net: Arc<NetStats>,
    last_acked: Arc<AtomicU64>,
    shutdown: Arc<AtomicBool>,
    jobs: Sender<Job>,
    conns: HashMap<ConnId, ConnState>,
    draining: bool,
}

impl EvServer {
    fn send_frame(&self, ctl: &mut Ctl<'_, EvMsg>, conn: ConnId, net_id: u64, frame: &Frame) {
        if ctl.send(conn, &frame.encode()) {
            self.net.count_frame_out(net_id);
        }
    }

    /// Decodes and dispatches frames until the connection goes
    /// in-flight, runs dry, or dies.
    fn pump(&mut self, ctl: &mut Ctl<'_, EvMsg>, conn: ConnId) {
        loop {
            let Some(state) = self.conns.get_mut(&conn) else {
                return;
            };
            if state.in_flight {
                return;
            }
            if self.draining {
                // Stop taking new work mid-drain, even if frames are
                // already buffered — the threaded transport likewise
                // discards unread socket data once the flag is up.
                break;
            }
            let net_id = state.net_id;
            match state.decoder.poll_frame() {
                Ok(None) => break,
                Err(e) => {
                    // Lost framing is connection-fatal: report and close,
                    // as the threaded path does.
                    self.net.count_protocol_error(net_id);
                    let reply = Frame {
                        kind: FrameType::Error,
                        seq: 0,
                        payload: e.to_string().into_bytes(),
                    };
                    self.send_frame(ctl, conn, net_id, &reply);
                    ctl.close(conn);
                    return;
                }
                Ok(Some(frame)) => {
                    self.net.count_frame_in(net_id);
                    match frame.kind {
                        FrameType::Hello => {
                            let reply = Frame {
                                kind: FrameType::HelloAck,
                                seq: frame.seq,
                                payload: wire::encode_u64(self.last_acked.load(Ordering::SeqCst)),
                            };
                            self.send_frame(ctl, conn, net_id, &reply);
                        }
                        FrameType::Heartbeat => {
                            let reply = Frame::empty(FrameType::HeartbeatAck, frame.seq);
                            self.send_frame(ctl, conn, net_id, &reply);
                        }
                        FrameType::Shutdown => {
                            ctl.close(conn);
                            return;
                        }
                        FrameType::Update | FrameType::Lookup | FrameType::StatsQuery => {
                            // Blocking router work: pause reads (wire
                            // backpressure) and ship to the bridge pool.
                            let state = self.conns.get_mut(&conn).expect("checked above");
                            state.in_flight = true;
                            ctl.pause(conn);
                            if self
                                .jobs
                                .send(Job {
                                    conn,
                                    net_id,
                                    frame,
                                })
                                .is_err()
                            {
                                // Bridge pool gone — only during teardown.
                                ctl.close(conn);
                            }
                            return;
                        }
                        FrameType::HelloAck
                        | FrameType::UpdateAck
                        | FrameType::LookupResult
                        | FrameType::StatsReply
                        | FrameType::HeartbeatAck
                        | FrameType::Error
                        | FrameType::ReplicaHello
                        | FrameType::SnapshotChunk
                        | FrameType::WalShip
                        | FrameType::ShardMapQuery
                        | FrameType::ShardMapReply
                        | FrameType::Promote
                        | FrameType::PromoteAck => {
                            self.net.count_protocol_error(net_id);
                            let reply = Frame {
                                kind: FrameType::Error,
                                seq: frame.seq,
                                payload: format!("unexpected client frame {:?}", frame.kind)
                                    .into_bytes(),
                            };
                            self.send_frame(ctl, conn, net_id, &reply);
                            ctl.close(conn);
                            return;
                        }
                    }
                }
            }
        }
        // Ran dry with nothing in flight.
        if self.draining {
            if let Some(state) = self.conns.get(&conn) {
                let net_id = state.net_id;
                self.send_frame(ctl, conn, net_id, &Frame::empty(FrameType::Shutdown, 0));
                ctl.close(conn);
            }
        } else {
            ctl.resume(conn);
        }
    }

    fn begin_drain(&mut self, ctl: &mut Ctl<'_, EvMsg>) {
        if self.draining {
            return;
        }
        self.draining = true;
        self.shutdown.store(true, Ordering::SeqCst);
        ctl.stop_listening();
        let idle: Vec<(ConnId, u64)> = self
            .conns
            .iter()
            .filter(|(_, s)| !s.in_flight)
            .map(|(&c, s)| (c, s.net_id))
            .collect();
        for (conn, net_id) in idle {
            self.send_frame(ctl, conn, net_id, &Frame::empty(FrameType::Shutdown, 0));
            ctl.close(conn);
        }
        if ctl.conn_count() == 0 {
            ctl.stop();
        } else {
            // Backstop: an in-flight call that outlives the journal
            // timeout (or a peer that never drains its socket) must not
            // wedge the drain forever.
            let grace = self.cfg.io_timeout + self.cfg.io_timeout + self.cfg.idle_poll;
            ctl.set_timer(grace, DRAIN_GRACE);
        }
    }
}

impl Driver for EvServer {
    type Msg = EvMsg;

    fn on_accept(&mut self, ctl: &mut Ctl<'_, EvMsg>, conn: ConnId, peer: SocketAddr) {
        let net_id = self.net.register(peer.to_string());
        self.conns.insert(
            conn,
            ConnState {
                net_id,
                decoder: FrameDecoder::new(),
                in_flight: false,
            },
        );
        if self.draining {
            self.send_frame(ctl, conn, net_id, &Frame::empty(FrameType::Shutdown, 0));
            ctl.close(conn);
        }
    }

    fn on_accept_error(&mut self, _ctl: &mut Ctl<'_, EvMsg>, _err: &io::Error) {
        // The reactor already applied its capped backoff; just count.
        self.net.count_accept_error();
    }

    fn on_data(&mut self, ctl: &mut Ctl<'_, EvMsg>, conn: ConnId, buf: &mut Vec<u8>) {
        if let Some(state) = self.conns.get_mut(&conn) {
            state.decoder.extend(buf);
        }
        buf.clear();
        self.pump(ctl, conn);
    }

    fn on_close(&mut self, ctl: &mut Ctl<'_, EvMsg>, conn: ConnId, reason: &CloseReason) {
        if let Some(state) = self.conns.remove(&conn) {
            if matches!(reason, CloseReason::Err(_)) {
                self.net.count_io_error(state.net_id);
            }
            self.net.close(state.net_id);
        }
        if self.draining && ctl.conn_count() == 0 {
            ctl.stop();
        }
    }

    fn on_msg(&mut self, ctl: &mut Ctl<'_, EvMsg>, msg: EvMsg) {
        match msg {
            EvMsg::Shutdown => self.begin_drain(ctl),
            EvMsg::Done { conn, reply } => {
                // The connection may have died while its job ran; the
                // router side effects stand (the client resumes from
                // last_acked), the reply just has nowhere to go.
                let Some(state) = self.conns.get_mut(&conn) else {
                    return;
                };
                state.in_flight = false;
                let net_id = state.net_id;
                let fatal = reply.kind == FrameType::Error;
                self.send_frame(ctl, conn, net_id, &reply);
                if fatal {
                    ctl.close(conn);
                } else {
                    self.pump(ctl, conn);
                }
            }
        }
    }

    fn on_timer(&mut self, ctl: &mut Ctl<'_, EvMsg>, tag: u64) {
        match tag {
            TICK => {
                if self.shutdown.load(Ordering::SeqCst) {
                    self.begin_drain(ctl);
                } else {
                    ctl.set_timer(self.cfg.idle_poll, TICK);
                }
            }
            DRAIN_GRACE if self.draining => ctl.stop(),
            _ => {}
        }
    }
}

/// Executes the blocking router calls for one frame; returns the reply
/// frame (`FrameType::Error` replies are connection-fatal).
fn process_job(
    job: &Job,
    svc: &RouterService,
    net: &NetStats,
    last_acked: &AtomicU64,
    io_timeout: Duration,
    started: Instant,
) -> Frame {
    let frame = &job.frame;
    let net_id = job.net_id;
    match frame.kind {
        FrameType::Update => match wire::decode_updates(&frame.payload) {
            Ok(batch) => {
                let mut accepted = 0u32;
                let mut dropped = 0u32;
                for u in batch {
                    // Under Block this call parks the *worker*; the loop
                    // keeps serving other connections while this one's
                    // paused socket throttles its peer.
                    match svc.submit_update_tagged(u, frame.seq) {
                        SubmitOutcome::Accepted => accepted += 1,
                        SubmitOutcome::Dropped => dropped += 1,
                    }
                }
                net.with_conn(net_id, |c| {
                    c.updates += u64::from(accepted);
                    c.update_drops += u64::from(dropped);
                });
                // Ack ⇒ journaled, same contract as the threaded path.
                if accepted > 0 && !svc.wait_journaled(frame.seq, io_timeout) {
                    net.count_io_error(net_id);
                    Frame {
                        kind: FrameType::Error,
                        seq: frame.seq,
                        payload: b"journal write did not complete; batch unacknowledged".to_vec(),
                    }
                } else {
                    last_acked.fetch_max(frame.seq, Ordering::SeqCst);
                    Frame {
                        kind: FrameType::UpdateAck,
                        seq: frame.seq,
                        payload: wire::encode_ack(wire::UpdateAck { accepted, dropped }),
                    }
                }
            }
            Err(e) => {
                net.count_protocol_error(net_id);
                Frame {
                    kind: FrameType::Error,
                    seq: frame.seq,
                    payload: e.to_string().into_bytes(),
                }
            }
        },
        FrameType::Lookup => match wire::decode_lookup(&frame.payload) {
            Ok(addrs) => {
                net.with_conn(net_id, |c| c.lookups += addrs.len() as u64);
                let results = svc.lookup_batch(addrs);
                Frame {
                    kind: FrameType::LookupResult,
                    seq: frame.seq,
                    payload: wire::encode_results(&results),
                }
            }
            Err(e) => {
                net.count_protocol_error(net_id);
                Frame {
                    kind: FrameType::Error,
                    seq: frame.seq,
                    payload: e.to_string().into_bytes(),
                }
            }
        },
        FrameType::StatsQuery => Frame {
            kind: FrameType::StatsReply,
            seq: frame.seq,
            payload: format!(
                "{{\"uptime_ms\":{},\"router\":{},\"net\":{}}}",
                started.elapsed().as_millis(),
                svc.stats().to_json(),
                net.to_json()
            )
            .into_bytes(),
        },
        // The driver only ships the three kinds above.
        _ => Frame {
            kind: FrameType::Error,
            seq: frame.seq,
            payload: b"internal: unroutable frame on bridge pool".to_vec(),
        },
    }
}

fn bridge_worker(
    jobs: &Receiver<Job>,
    handle: &LoopHandle<EvMsg>,
    svc: &RouterService,
    net: &NetStats,
    last_acked: &AtomicU64,
    io_timeout: Duration,
    started: Instant,
) {
    while let Ok(job) = jobs.recv() {
        let reply = process_job(&job, svc, net, last_acked, io_timeout, started);
        if !handle.send(EvMsg::Done {
            conn: job.conn,
            reply,
        }) {
            return;
        }
    }
}

/// The running halves of a booted evloop transport: the loop's
/// injection handle, the loop thread, and the bridge-pool threads.
pub(crate) type EvRuntime = (LoopHandle<EvMsg>, JoinHandle<()>, Vec<JoinHandle<()>>);

/// Boots the event-loop transport over an already-bound listener.
/// Join the loop first: dropping the returned driver closes the job
/// channel, which releases the workers.
pub(crate) fn start(
    listener: TcpListener,
    cfg: &ServerConfig,
    svc: &Arc<RouterService>,
    net: &Arc<NetStats>,
    last_acked: &Arc<AtomicU64>,
    shutdown: &Arc<AtomicBool>,
    started: Instant,
) -> io::Result<EvRuntime> {
    // The whole point of this transport is tens of thousands of
    // connections; a stock 1024-fd soft limit would park the accept
    // loop in EMFILE backoff long before that.
    clue_aio::rlimit::raise_nofile(65_536);
    let (jobs_tx, jobs_rx) = channel::unbounded::<Job>();
    let driver = EvServer {
        cfg: cfg.clone(),
        net: Arc::clone(net),
        last_acked: Arc::clone(last_acked),
        shutdown: Arc::clone(shutdown),
        jobs: jobs_tx,
        conns: HashMap::new(),
        draining: false,
    };
    let mut el = EventLoop::new(driver, LoopConfig::default())?;
    el.add_listener(listener)?;
    el.set_timer(cfg.idle_poll, TICK);
    let handle = el.handle();

    let workers = (0..cfg.bridge_threads.max(1))
        .map(|_| {
            let jobs = jobs_rx.clone();
            let handle = el.handle();
            let svc = Arc::clone(svc);
            let net = Arc::clone(net);
            let last_acked = Arc::clone(last_acked);
            let io_timeout = cfg.io_timeout;
            std::thread::spawn(move || {
                bridge_worker(&jobs, &handle, &svc, &net, &last_acked, io_timeout, started);
            })
        })
        .collect();

    let loop_thread = std::thread::spawn(move || {
        // An Err here is an unrecoverable poller failure; the Server
        // counts the failed join. Returning drops the driver, closing
        // the job channel and releasing the bridge pool.
        let _ = el.run();
    });

    Ok((handle, loop_thread, workers))
}
