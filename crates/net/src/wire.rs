//! Payload encodings for each [`FrameType`](crate::frame::FrameType).
//!
//! All integers are big-endian. Updates encode as a count followed by
//! tagged records (`1` announce: bits/len/next-hop, `2` withdraw:
//! bits/len); lookups as a count followed by raw `u32` addresses;
//! results as a count followed by `u32` values where `0xFFFF_FFFF`
//! means "no matching route". Decoders reject trailing garbage so a
//! mis-framed payload cannot half-parse.

use std::io::{self, ErrorKind};

use clue_fib::{NextHop, Prefix, Update};

const ANNOUNCE: u8 = 1;
const WITHDRAW: u8 = 2;
/// "No route" sentinel in lookup results.
const MISS: u32 = 0xFFFF_FFFF;

fn bad(msg: String) -> io::Error {
    io::Error::new(ErrorKind::InvalidData, msg)
}

/// A strict little cursor: every read is bounds-checked and the caller
/// asserts emptiness at the end.
struct Cursor<'a> {
    buf: &'a [u8],
    at: usize,
}

impl<'a> Cursor<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Cursor { buf, at: 0 }
    }

    fn take(&mut self, n: usize) -> io::Result<&'a [u8]> {
        let end = self
            .at
            .checked_add(n)
            .filter(|&e| e <= self.buf.len())
            .ok_or_else(|| bad(format!("payload truncated at byte {}", self.at)))?;
        let s = &self.buf[self.at..end];
        self.at = end;
        Ok(s)
    }

    fn u8(&mut self) -> io::Result<u8> {
        Ok(self.take(1)?[0])
    }

    fn u16(&mut self) -> io::Result<u16> {
        Ok(u16::from_be_bytes(self.take(2)?.try_into().unwrap()))
    }

    fn u32(&mut self) -> io::Result<u32> {
        Ok(u32::from_be_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn u64(&mut self) -> io::Result<u64> {
        Ok(u64::from_be_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn finish(self) -> io::Result<()> {
        if self.at == self.buf.len() {
            Ok(())
        } else {
            Err(bad(format!(
                "{} trailing bytes after payload",
                self.buf.len() - self.at
            )))
        }
    }
}

/// Encodes a `u64` (Hello / HelloAck seq payloads).
#[must_use]
pub fn encode_u64(v: u64) -> Vec<u8> {
    v.to_be_bytes().to_vec()
}

/// Decodes a `u64` payload.
pub fn decode_u64(payload: &[u8]) -> io::Result<u64> {
    let mut c = Cursor::new(payload);
    let v = c.u64()?;
    c.finish()?;
    Ok(v)
}

/// Encodes a batch of route updates.
#[must_use]
pub fn encode_updates(batch: &[Update]) -> Vec<u8> {
    let mut buf = Vec::with_capacity(4 + batch.len() * 8);
    buf.extend_from_slice(&(batch.len() as u32).to_be_bytes());
    for u in batch {
        match *u {
            Update::Announce { prefix, next_hop } => {
                buf.push(ANNOUNCE);
                buf.extend_from_slice(&prefix.bits().to_be_bytes());
                buf.push(prefix.len());
                buf.extend_from_slice(&next_hop.0.to_be_bytes());
            }
            Update::Withdraw { prefix } => {
                buf.push(WITHDRAW);
                buf.extend_from_slice(&prefix.bits().to_be_bytes());
                buf.push(prefix.len());
            }
        }
    }
    buf
}

/// Decodes a batch of route updates.
pub fn decode_updates(payload: &[u8]) -> io::Result<Vec<Update>> {
    let mut c = Cursor::new(payload);
    let count = c.u32()? as usize;
    let mut out = Vec::with_capacity(count.min(payload.len()));
    for i in 0..count {
        let tag = c.u8()?;
        let bits = c.u32()?;
        let len = c.u8()?;
        if len > 32 {
            return Err(bad(format!("update {i}: prefix length {len} > 32")));
        }
        let prefix = Prefix::new(bits, len);
        out.push(match tag {
            ANNOUNCE => Update::Announce {
                prefix,
                next_hop: NextHop(c.u16()?),
            },
            WITHDRAW => Update::Withdraw { prefix },
            other => return Err(bad(format!("update {i}: unknown tag {other}"))),
        });
    }
    c.finish()?;
    Ok(out)
}

/// Encodes a lookup batch (raw addresses).
#[must_use]
pub fn encode_lookup(addrs: &[u32]) -> Vec<u8> {
    let mut buf = Vec::with_capacity(4 + addrs.len() * 4);
    buf.extend_from_slice(&(addrs.len() as u32).to_be_bytes());
    for &a in addrs {
        buf.extend_from_slice(&a.to_be_bytes());
    }
    buf
}

/// Decodes a lookup batch.
pub fn decode_lookup(payload: &[u8]) -> io::Result<Vec<u32>> {
    let mut c = Cursor::new(payload);
    let count = c.u32()? as usize;
    let mut out = Vec::with_capacity(count.min(payload.len()));
    for _ in 0..count {
        out.push(c.u32()?);
    }
    c.finish()?;
    Ok(out)
}

/// Encodes lookup results (`0xFFFF_FFFF` = no route).
#[must_use]
pub fn encode_results(results: &[Option<NextHop>]) -> Vec<u8> {
    let mut buf = Vec::with_capacity(4 + results.len() * 4);
    buf.extend_from_slice(&(results.len() as u32).to_be_bytes());
    for r in results {
        let v = r.map_or(MISS, |nh| u32::from(nh.0));
        buf.extend_from_slice(&v.to_be_bytes());
    }
    buf
}

/// Decodes lookup results.
pub fn decode_results(payload: &[u8]) -> io::Result<Vec<Option<NextHop>>> {
    let mut c = Cursor::new(payload);
    let count = c.u32()? as usize;
    let mut out = Vec::with_capacity(count.min(payload.len()));
    for i in 0..count {
        out.push(match c.u32()? {
            MISS => None,
            v if v <= u32::from(u16::MAX) => Some(NextHop(v as u16)),
            v => return Err(bad(format!("result {i}: next hop {v} out of range"))),
        });
    }
    c.finish()?;
    Ok(out)
}

/// Per-batch acknowledgement (the payload of `UpdateAck`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct UpdateAck {
    /// Updates that entered the router's ingress.
    pub accepted: u32,
    /// Updates rejected by `OverflowPolicy::DropNewest`.
    pub dropped: u32,
}

/// Encodes an [`UpdateAck`].
#[must_use]
pub fn encode_ack(ack: UpdateAck) -> Vec<u8> {
    let mut buf = Vec::with_capacity(8);
    buf.extend_from_slice(&ack.accepted.to_be_bytes());
    buf.extend_from_slice(&ack.dropped.to_be_bytes());
    buf
}

/// Decodes an [`UpdateAck`].
pub fn decode_ack(payload: &[u8]) -> io::Result<UpdateAck> {
    let mut c = Cursor::new(payload);
    let ack = UpdateAck {
        accepted: c.u32()?,
        dropped: c.u32()?,
    };
    c.finish()?;
    Ok(ack)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(bits: u32, len: u8) -> Prefix {
        Prefix::new(bits, len)
    }

    #[test]
    fn updates_round_trip() {
        let batch = vec![
            Update::Announce {
                prefix: p(0x0A00_0000, 8),
                next_hop: NextHop(7),
            },
            Update::Withdraw {
                prefix: p(0xC0A8_0000, 16),
            },
            Update::Announce {
                prefix: p(0, 0),
                next_hop: NextHop(u16::MAX),
            },
        ];
        assert_eq!(decode_updates(&encode_updates(&batch)).unwrap(), batch);
        assert_eq!(decode_updates(&encode_updates(&[])).unwrap(), Vec::new());
    }

    #[test]
    fn lookups_and_results_round_trip() {
        let addrs = vec![0, 1, 0xDEAD_BEEF, u32::MAX];
        assert_eq!(decode_lookup(&encode_lookup(&addrs)).unwrap(), addrs);
        let results = vec![Some(NextHop(0)), None, Some(NextHop(u16::MAX))];
        assert_eq!(decode_results(&encode_results(&results)).unwrap(), results);
    }

    #[test]
    fn acks_and_u64s_round_trip() {
        let ack = UpdateAck {
            accepted: 31,
            dropped: 2,
        };
        assert_eq!(decode_ack(&encode_ack(ack)).unwrap(), ack);
        assert_eq!(decode_u64(&encode_u64(u64::MAX)).unwrap(), u64::MAX);
    }

    #[test]
    fn truncation_and_trailing_garbage_are_rejected() {
        let good = encode_updates(&[Update::Withdraw {
            prefix: p(0x0A00_0000, 8),
        }]);
        assert!(decode_updates(&good[..good.len() - 1]).is_err());
        let mut padded = good.clone();
        padded.push(0);
        assert!(decode_updates(&padded).is_err());
        // A count promising more records than the payload holds.
        let mut forged = good;
        forged[3] = 200;
        assert!(decode_updates(&forged).is_err());
    }

    #[test]
    fn bad_tags_and_lengths_are_rejected() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&1u32.to_be_bytes());
        buf.push(9); // unknown tag
        buf.extend_from_slice(&0u32.to_be_bytes());
        buf.push(8);
        assert!(decode_updates(&buf).is_err());

        let mut buf = Vec::new();
        buf.extend_from_slice(&1u32.to_be_bytes());
        buf.push(WITHDRAW);
        buf.extend_from_slice(&0u32.to_be_bytes());
        buf.push(33); // prefix length out of range
        assert!(decode_updates(&buf).is_err());

        let mut buf = Vec::new();
        buf.extend_from_slice(&1u32.to_be_bytes());
        buf.extend_from_slice(&0x0001_0000u32.to_be_bytes()); // hop > u16
        assert!(decode_results(&buf).is_err());
    }
}
