//! Payload encodings for each [`FrameType`](crate::frame::FrameType).
//!
//! All integers are big-endian. Updates encode as a count followed by
//! tagged records (`1` announce: bits/len/next-hop, `2` withdraw:
//! bits/len); lookups as a count followed by raw `u32` addresses;
//! results as a count followed by `u32` values where `0xFFFF_FFFF`
//! means "no matching route". Decoders reject trailing garbage so a
//! mis-framed payload cannot half-parse.
//!
//! The update-batch codec and the strict cursor underneath every
//! decoder live in [`clue_core::codec`] — the write-ahead journal in
//! `clue-store` persists the same byte layout, so the shared encoding
//! sits beneath both crates. They are re-exported here under their
//! historical paths.

use std::io;

use clue_core::codec::{bad_data as bad, Cursor};
use clue_fib::NextHop;

pub use clue_core::codec::{decode_updates, encode_updates};

/// "No route" sentinel in lookup results.
const MISS: u32 = 0xFFFF_FFFF;

/// Encodes a `u64` (Hello / HelloAck seq payloads).
#[must_use]
pub fn encode_u64(v: u64) -> Vec<u8> {
    v.to_be_bytes().to_vec()
}

/// Decodes a `u64` payload.
pub fn decode_u64(payload: &[u8]) -> io::Result<u64> {
    let mut c = Cursor::new(payload);
    let v = c.u64()?;
    c.finish()?;
    Ok(v)
}

/// Encodes a lookup batch (raw addresses).
#[must_use]
pub fn encode_lookup(addrs: &[u32]) -> Vec<u8> {
    let mut buf = Vec::with_capacity(4 + addrs.len() * 4);
    buf.extend_from_slice(&(addrs.len() as u32).to_be_bytes());
    for &a in addrs {
        buf.extend_from_slice(&a.to_be_bytes());
    }
    buf
}

/// Decodes a lookup batch.
pub fn decode_lookup(payload: &[u8]) -> io::Result<Vec<u32>> {
    let mut c = Cursor::new(payload);
    let count = c.u32()? as usize;
    let mut out = Vec::with_capacity(count.min(payload.len()));
    for _ in 0..count {
        out.push(c.u32()?);
    }
    c.finish()?;
    Ok(out)
}

/// Encodes lookup results (`0xFFFF_FFFF` = no route).
#[must_use]
pub fn encode_results(results: &[Option<NextHop>]) -> Vec<u8> {
    let mut buf = Vec::with_capacity(4 + results.len() * 4);
    buf.extend_from_slice(&(results.len() as u32).to_be_bytes());
    for r in results {
        let v = r.map_or(MISS, |nh| u32::from(nh.0));
        buf.extend_from_slice(&v.to_be_bytes());
    }
    buf
}

/// Decodes lookup results.
pub fn decode_results(payload: &[u8]) -> io::Result<Vec<Option<NextHop>>> {
    let mut c = Cursor::new(payload);
    let count = c.u32()? as usize;
    let mut out = Vec::with_capacity(count.min(payload.len()));
    for i in 0..count {
        out.push(match c.u32()? {
            MISS => None,
            v if v <= u32::from(u16::MAX) => Some(NextHop(v as u16)),
            v => return Err(bad(format!("result {i}: next hop {v} out of range"))),
        });
    }
    c.finish()?;
    Ok(out)
}

/// Per-batch acknowledgement (the payload of `UpdateAck`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct UpdateAck {
    /// Updates that entered the router's ingress.
    pub accepted: u32,
    /// Updates rejected by `OverflowPolicy::DropNewest`.
    pub dropped: u32,
}

/// Encodes an [`UpdateAck`].
#[must_use]
pub fn encode_ack(ack: UpdateAck) -> Vec<u8> {
    let mut buf = Vec::with_capacity(8);
    buf.extend_from_slice(&ack.accepted.to_be_bytes());
    buf.extend_from_slice(&ack.dropped.to_be_bytes());
    buf
}

/// Decodes an [`UpdateAck`].
pub fn decode_ack(payload: &[u8]) -> io::Result<UpdateAck> {
    let mut c = Cursor::new(payload);
    let ack = UpdateAck {
        accepted: c.u32()?,
        dropped: c.u32()?,
    };
    c.finish()?;
    Ok(ack)
}

/// Encodes one `SnapshotChunk` payload: an `is_last` marker byte
/// followed by the raw chunk bytes. The chunk index rides in the
/// frame's `seq` field.
#[must_use]
pub fn encode_chunk(last: bool, data: &[u8]) -> Vec<u8> {
    let mut buf = Vec::with_capacity(1 + data.len());
    buf.push(u8::from(last));
    buf.extend_from_slice(data);
    buf
}

/// Decodes a `SnapshotChunk` payload into `(is_last, chunk_bytes)`.
pub fn decode_chunk(payload: &[u8]) -> io::Result<(bool, &[u8])> {
    let Some((&marker, data)) = payload.split_first() else {
        return Err(bad("snapshot chunk missing its marker byte".into()));
    };
    match marker {
        0 => Ok((false, data)),
        1 => Ok((true, data)),
        v => Err(bad(format!("snapshot chunk marker {v} is not 0/1"))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use clue_fib::{Prefix, Update};

    fn p(bits: u32, len: u8) -> Prefix {
        Prefix::new(bits, len)
    }

    #[test]
    fn updates_round_trip_through_the_reexport() {
        let batch = vec![
            Update::Announce {
                prefix: p(0x0A00_0000, 8),
                next_hop: NextHop(7),
            },
            Update::Withdraw {
                prefix: p(0xC0A8_0000, 16),
            },
        ];
        assert_eq!(decode_updates(&encode_updates(&batch)).unwrap(), batch);
    }

    #[test]
    fn lookups_and_results_round_trip() {
        let addrs = vec![0, 1, 0xDEAD_BEEF, u32::MAX];
        assert_eq!(decode_lookup(&encode_lookup(&addrs)).unwrap(), addrs);
        let results = vec![Some(NextHop(0)), None, Some(NextHop(u16::MAX))];
        assert_eq!(decode_results(&encode_results(&results)).unwrap(), results);
    }

    #[test]
    fn acks_and_u64s_round_trip() {
        let ack = UpdateAck {
            accepted: 31,
            dropped: 2,
        };
        assert_eq!(decode_ack(&encode_ack(ack)).unwrap(), ack);
        assert_eq!(decode_u64(&encode_u64(u64::MAX)).unwrap(), u64::MAX);
    }

    #[test]
    fn truncation_and_trailing_garbage_are_rejected() {
        let good = encode_lookup(&[1, 2, 3]);
        assert!(decode_lookup(&good[..good.len() - 1]).is_err());
        let mut padded = good;
        padded.push(0);
        assert!(decode_lookup(&padded).is_err());
        assert!(decode_u64(&[0; 7]).is_err());
        assert!(decode_u64(&[0; 9]).is_err());
        assert!(decode_ack(&[0; 7]).is_err());
    }

    #[test]
    fn snapshot_chunks_round_trip_and_reject_bad_markers() {
        let data = [9u8, 8, 7, 6];
        assert_eq!(
            decode_chunk(&encode_chunk(false, &data)).unwrap(),
            (false, &data[..])
        );
        assert_eq!(
            decode_chunk(&encode_chunk(true, &[])).unwrap(),
            (true, &[][..])
        );
        assert!(decode_chunk(&[]).is_err());
        assert!(decode_chunk(&[2, 1]).is_err());
    }

    #[test]
    fn out_of_range_next_hops_are_rejected() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&1u32.to_be_bytes());
        buf.extend_from_slice(&0x0001_0000u32.to_be_bytes()); // hop > u16
        assert!(decode_results(&buf).is_err());
    }
}
