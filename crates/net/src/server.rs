//! The TCP frontend: accepts connections and bridges decoded frames into
//! a live [`RouterService`].
//!
//! Backpressure mapping — the load-bearing design point: each connection
//! is served by one thread that decodes a frame, performs the router
//! call, writes the reply, and only then reads the next frame. Under
//! [`OverflowPolicy::Block`](clue_router::OverflowPolicy::Block) the
//! router call `submit_update` *blocks* when the bounded ingress is
//! full, which stops this thread from draining the socket, which fills
//! the kernel receive buffer, which closes the peer's TCP window — so a
//! fast client is throttled by the update plane's real capacity instead
//! of an unbounded queue. Under `DropNewest` the call returns
//! immediately and the per-batch [`UpdateAck`](crate::wire::UpdateAck)
//! carries the drop count back to the sender.
//!
//! Shutdown is a graceful drain: [`Server::drain`] stops the accept
//! loop, tells every connection thread to stop taking new work (a
//! `Shutdown` frame is sent to the peer), joins them, and then drains
//! the router — applying every queued update and publishing the final
//! epoch — before returning the final [`RouterReport`].
//!
//! Two [`Transport`]s implement these semantics: the per-connection
//! thread model in this module, and the `clue-aio` event-loop reactor
//! in [`evserver`](crate::evserver) (selected via
//! [`ServerConfig::transport`]) which multiplexes every connection
//! onto one loop thread and scales to tens of thousands of clients.

use std::io::{self, ErrorKind, Read};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use clue_fib::RouteTable;
use clue_router::{RouterConfig, RouterReport, RouterService, SubmitOutcome};

use crate::frame::{Frame, FrameType};
use crate::stats::NetStats;
use crate::wire;

/// Which connection transport a [`Server`] runs.
///
/// Both transports speak the same wire protocol with the same
/// backpressure, ack, and drain semantics; they differ only in how
/// concurrency is organized — and therefore in how many connections
/// one process can hold.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Transport {
    /// One blocking reader thread per connection (the original design):
    /// simple, but each connection costs a thread stack.
    #[default]
    Threads,
    /// One `clue-aio` event-loop thread multiplexing every connection,
    /// plus a small bridge pool for the blocking router calls — tens of
    /// thousands of connections per process.
    Evloop,
}

impl Transport {
    /// The CLI spelling (`threads` / `evloop`).
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Transport::Threads => "threads",
            Transport::Evloop => "evloop",
        }
    }
}

impl std::str::FromStr for Transport {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "threads" | "threaded" => Ok(Transport::Threads),
            "evloop" | "event-loop" | "eventloop" => Ok(Transport::Evloop),
            other => Err(format!(
                "unknown transport {other:?} (expected threads|evloop)"
            )),
        }
    }
}

impl std::fmt::Display for Transport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Server tuning knobs.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Address to bind (`127.0.0.1:0` picks a free port).
    pub listen: String,
    /// Configuration for the backing [`RouterService`].
    pub router: RouterConfig,
    /// How often idle connection threads and the accept loop re-check
    /// the shutdown flag.
    pub idle_poll: Duration,
    /// Timeout for finishing a frame whose first byte arrived, and for
    /// socket writes.
    pub io_timeout: Duration,
    /// Connection transport (`Threads` per-connection threads, or the
    /// `Evloop` reactor).
    pub transport: Transport,
    /// Bridge-pool size for the `Evloop` transport: how many router
    /// calls may block concurrently (ignored under `Threads`).
    pub bridge_threads: usize,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            listen: "127.0.0.1:0".to_string(),
            router: RouterConfig::default(),
            idle_poll: Duration::from_millis(50),
            io_timeout: Duration::from_secs(10),
            transport: Transport::Threads,
            bridge_threads: 4,
        }
    }
}

/// A running server: accept loop + per-connection threads over one
/// [`RouterService`]. Call [`Server::drain`] for the graceful shutdown
/// path; a plain drop also shuts everything down (discarding the
/// report).
pub struct Server {
    local_addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    svc: Option<Arc<RouterService>>,
    net: Arc<NetStats>,
    runtime: Option<Runtime>,
    started: Instant,
}

/// The transport-specific running half of a [`Server`].
enum Runtime {
    Threads {
        accept: JoinHandle<Vec<JoinHandle<()>>>,
    },
    Evloop {
        handle: clue_aio::LoopHandle<crate::evserver::EvMsg>,
        event_loop: JoinHandle<()>,
        workers: Vec<JoinHandle<()>>,
    },
}

impl Server {
    /// Binds `cfg.listen`, boots the router over `table`, and starts
    /// accepting connections.
    ///
    /// # Errors
    ///
    /// Fails if the listen address cannot be bound.
    pub fn start(table: &RouteTable, cfg: &ServerConfig) -> io::Result<Server> {
        Self::start_with_service(RouterService::start(table, &cfg.router), 0, cfg)
    }

    /// Binds `cfg.listen` over an already-booted service — the seam a
    /// durable deployment uses: boot the router via
    /// `RouterService::start_recovered`/`start_with_journal` (keeping
    /// this crate free of any storage dependency) and advertise the
    /// recovered ack high-water as `initial_seq`, so resuming clients'
    /// `Hello` exchange settles exactly the batches the journal kept.
    ///
    /// # Errors
    ///
    /// Fails if the listen address cannot be bound.
    pub fn start_with_service(
        svc: RouterService,
        initial_seq: u64,
        cfg: &ServerConfig,
    ) -> io::Result<Server> {
        let listener = TcpListener::bind(&cfg.listen)?;
        let local_addr = listener.local_addr()?;

        let svc = Arc::new(svc);
        let shutdown = Arc::new(AtomicBool::new(false));
        let net = Arc::new(NetStats::new());
        let last_acked = Arc::new(AtomicU64::new(initial_seq));

        let started = Instant::now();
        let runtime = match cfg.transport {
            Transport::Threads => {
                listener.set_nonblocking(true)?;
                let svc = Arc::clone(&svc);
                let shutdown = Arc::clone(&shutdown);
                let net = Arc::clone(&net);
                let last_acked = Arc::clone(&last_acked);
                let cfg = cfg.clone();
                let accept = std::thread::spawn(move || {
                    accept_loop(&listener, &cfg, &svc, &net, &last_acked, &shutdown, started)
                });
                Runtime::Threads { accept }
            }
            Transport::Evloop => {
                let (handle, event_loop, workers) = crate::evserver::start(
                    listener,
                    cfg,
                    &svc,
                    &net,
                    &last_acked,
                    &shutdown,
                    started,
                )?;
                Runtime::Evloop {
                    handle,
                    event_loop,
                    workers,
                }
            }
        };

        Ok(Server {
            local_addr,
            shutdown,
            svc: Some(svc),
            net,
            runtime: Some(runtime),
            started,
        })
    }

    /// The bound address (useful with `:0` ephemeral ports).
    #[must_use]
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// The shutdown flag; setting it (e.g. from a signal handler's
    /// watcher) starts the graceful drain on the accept and connection
    /// threads. Pair with [`Server::drain`] to collect the report.
    #[must_use]
    pub fn shutdown_flag(&self) -> Arc<AtomicBool> {
        Arc::clone(&self.shutdown)
    }

    /// Requests shutdown without blocking.
    pub fn request_shutdown(&self) {
        self.shutdown.store(true, Ordering::SeqCst);
        if let Some(Runtime::Evloop { handle, .. }) = &self.runtime {
            // Wake the loop so the drain starts now rather than at the
            // next shutdown-poll tick.
            let _ = handle.send(crate::evserver::EvMsg::Shutdown);
        }
    }

    /// True once shutdown has been requested.
    #[must_use]
    pub fn shutdown_requested(&self) -> bool {
        self.shutdown.load(Ordering::SeqCst)
    }

    /// The network-plane stats registry.
    #[must_use]
    pub fn net_stats(&self) -> &NetStats {
        &self.net
    }

    /// The combined stats document served to `StatsQuery` clients:
    /// `{"uptime_ms":…,"router":{…},"net":{…}}`. A drained server
    /// reports `"router":null`.
    #[must_use]
    pub fn stats_json(&self) -> String {
        let router = self
            .svc
            .as_ref()
            .map_or_else(|| "null".to_string(), |svc| svc.stats().to_json());
        format!(
            "{{\"uptime_ms\":{},\"router\":{},\"net\":{}}}",
            self.started.elapsed().as_millis(),
            router,
            self.net.to_json(),
        )
    }

    /// Gracefully drains: stops accepting, closes every connection
    /// (after a `Shutdown` frame), joins all threads, then drains the
    /// router — flushing queued updates and publishing the final epoch.
    ///
    /// # Errors
    ///
    /// Fails if the router service is no longer exclusively held — a
    /// connection thread died without releasing its handle (the failed
    /// join is already counted in the [`NetStats`] error ledger).
    pub fn drain(mut self) -> io::Result<RouterReport> {
        self.stop_and_join();
        let svc = self
            .svc
            .take()
            .ok_or_else(|| io::Error::new(ErrorKind::InvalidInput, "server already drained"))?;
        let svc = Arc::into_inner(svc).ok_or_else(|| {
            self.net.count_io_error(u64::MAX);
            io::Error::other("router service still shared by an unjoined connection thread")
        })?;
        Ok(svc.drain())
    }

    fn stop_and_join(&mut self) {
        self.shutdown.store(true, Ordering::SeqCst);
        match self.runtime.take() {
            None => {}
            Some(Runtime::Threads { accept }) => match accept.join() {
                Ok(handlers) => {
                    for h in handlers {
                        if h.join().is_err() {
                            // A panicked connection thread: note it and
                            // keep joining the rest.
                            self.net.count_io_error(u64::MAX);
                        }
                    }
                }
                Err(_) => self.net.count_io_error(u64::MAX),
            },
            Some(Runtime::Evloop {
                handle,
                event_loop,
                workers,
            }) => {
                let _ = handle.send(crate::evserver::EvMsg::Shutdown);
                // The loop drains and exits; dropping its driver closes
                // the bridge-pool job channel, releasing the workers.
                if event_loop.join().is_err() {
                    self.net.count_io_error(u64::MAX);
                }
                for w in workers {
                    if w.join().is_err() {
                        self.net.count_io_error(u64::MAX);
                    }
                }
            }
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        // An undrained server still stops its threads; the backing
        // RouterService then cleans up via its own Drop.
        self.stop_and_join();
    }
}

#[allow(clippy::too_many_arguments)]
fn accept_loop(
    listener: &TcpListener,
    cfg: &ServerConfig,
    svc: &Arc<RouterService>,
    net: &Arc<NetStats>,
    last_acked: &Arc<AtomicU64>,
    shutdown: &Arc<AtomicBool>,
    started: Instant,
) -> Vec<JoinHandle<()>> {
    // Transient accept() failures (EMFILE/ENFILE fd exhaustion, aborted
    // handshakes) get a capped exponential pause instead of a hot spin:
    // fd pressure only clears when some connection closes, so retrying
    // instantly just burns the core that could be serving.
    const BACKOFF_BASE: Duration = Duration::from_millis(5);
    const BACKOFF_CAP: Duration = Duration::from_secs(1);
    let mut backoff = Duration::ZERO;
    let mut handlers = Vec::new();
    while !shutdown.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, peer)) => {
                backoff = Duration::ZERO;
                let conn_id = net.register(peer.to_string());
                let svc = Arc::clone(svc);
                let net = Arc::clone(net);
                let last_acked = Arc::clone(last_acked);
                let shutdown = Arc::clone(shutdown);
                let cfg = cfg.clone();
                handlers.push(std::thread::spawn(move || {
                    serve_conn(
                        stream,
                        conn_id,
                        &cfg,
                        &svc,
                        &net,
                        &last_acked,
                        &shutdown,
                        started,
                    );
                    net.close(conn_id);
                }));
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock => {
                backoff = Duration::ZERO;
                std::thread::sleep(cfg.idle_poll);
            }
            Err(_) => {
                net.count_accept_error();
                backoff = if backoff.is_zero() {
                    BACKOFF_BASE
                } else {
                    (backoff * 2).min(BACKOFF_CAP)
                };
                std::thread::sleep(backoff);
            }
        }
    }
    handlers
}

/// What one idle-aware poll of the socket produced.
enum Polled {
    Frame(Frame),
    Idle,
    Eof,
    ProtocolError(io::Error),
    /// Socket-level failure; the error itself is uninteresting beyond
    /// the per-connection counter it bumps.
    IoError,
}

/// Reads one frame, but blocks at most `idle_poll` while the line is
/// quiet: the first byte is read under the short timeout (so the thread
/// can re-check the shutdown flag), and the remainder of the frame under
/// the longer `io_timeout`. A timeout *mid-frame* is a real error — the
/// stream has lost framing.
fn poll_frame(stream: &TcpStream, cfg: &ServerConfig) -> Polled {
    if stream.set_read_timeout(Some(cfg.idle_poll)).is_err() {
        return Polled::IoError;
    }
    let mut lead = [0u8; 1];
    match (&mut &*stream).read(&mut lead) {
        Ok(0) => Polled::Eof,
        Ok(_) => {
            if stream.set_read_timeout(Some(cfg.io_timeout)).is_err() {
                return Polled::IoError;
            }
            match Frame::read_after_lead(lead[0], &mut &*stream) {
                Ok(frame) => Polled::Frame(frame),
                Err(e) if e.kind() == ErrorKind::InvalidData => Polled::ProtocolError(e),
                Err(_) => Polled::IoError,
            }
        }
        Err(e) if matches!(e.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut) => Polled::Idle,
        Err(e) if e.kind() == ErrorKind::Interrupted => Polled::Idle,
        Err(_) => Polled::IoError,
    }
}

fn send(stream: &TcpStream, net: &NetStats, conn_id: u64, frame: &Frame) -> io::Result<()> {
    frame.write_to(&mut &*stream)?;
    net.count_frame_out(conn_id);
    Ok(())
}

#[allow(clippy::too_many_lines, clippy::too_many_arguments)]
fn serve_conn(
    stream: TcpStream,
    conn_id: u64,
    cfg: &ServerConfig,
    svc: &RouterService,
    net: &NetStats,
    last_acked: &AtomicU64,
    shutdown: &AtomicBool,
    started: Instant,
) {
    let _ = stream.set_nodelay(true);
    let _ = stream.set_write_timeout(Some(cfg.io_timeout));
    loop {
        if shutdown.load(Ordering::SeqCst) {
            // Stop taking new work; tell the peer why the line closes.
            let _ = send(&stream, net, conn_id, &Frame::empty(FrameType::Shutdown, 0));
            return;
        }
        let frame = match poll_frame(&stream, cfg) {
            Polled::Frame(f) => f,
            Polled::Idle => continue,
            Polled::Eof => return,
            Polled::ProtocolError(e) => {
                net.count_protocol_error(conn_id);
                let _ = send(
                    &stream,
                    net,
                    conn_id,
                    &Frame {
                        kind: FrameType::Error,
                        seq: 0,
                        payload: e.to_string().into_bytes(),
                    },
                );
                return;
            }
            Polled::IoError => {
                net.count_io_error(conn_id);
                return;
            }
        };
        net.count_frame_in(conn_id);

        let reply = match frame.kind {
            FrameType::Hello => Frame {
                kind: FrameType::HelloAck,
                seq: frame.seq,
                payload: wire::encode_u64(last_acked.load(Ordering::SeqCst)),
            },
            FrameType::Update => match wire::decode_updates(&frame.payload) {
                Ok(batch) => {
                    let mut accepted = 0u32;
                    let mut dropped = 0u32;
                    for u in batch {
                        // Under Block this is where wire backpressure is
                        // born: the send blocks, this thread stops
                        // reading, and TCP throttles the peer.
                        match svc.submit_update_tagged(u, frame.seq) {
                            SubmitOutcome::Accepted => accepted += 1,
                            SubmitOutcome::Dropped => dropped += 1,
                        }
                    }
                    net.with_conn(conn_id, |c| {
                        c.updates += u64::from(accepted);
                        c.update_drops += u64::from(dropped);
                    });
                    // Ack ⇒ journaled: on a durable router, hold this
                    // batch's ack until the journal high-water covers
                    // its seq, so a post-crash server never advertises
                    // an ack position the disk cannot back. (Trivially
                    // immediate without a journal; skipped when nothing
                    // was accepted — a fully-dropped batch journals
                    // nothing to wait for.)
                    if accepted > 0 && !svc.wait_journaled(frame.seq, cfg.io_timeout) {
                        net.count_io_error(conn_id);
                        Frame {
                            kind: FrameType::Error,
                            seq: frame.seq,
                            payload: b"journal write did not complete; batch unacknowledged"
                                .to_vec(),
                        }
                    } else {
                        last_acked.fetch_max(frame.seq, Ordering::SeqCst);
                        Frame {
                            kind: FrameType::UpdateAck,
                            seq: frame.seq,
                            payload: wire::encode_ack(wire::UpdateAck { accepted, dropped }),
                        }
                    }
                }
                Err(e) => {
                    net.count_protocol_error(conn_id);
                    Frame {
                        kind: FrameType::Error,
                        seq: frame.seq,
                        payload: e.to_string().into_bytes(),
                    }
                }
            },
            FrameType::Lookup => match wire::decode_lookup(&frame.payload) {
                Ok(addrs) => {
                    net.with_conn(conn_id, |c| c.lookups += addrs.len() as u64);
                    let results = svc.lookup_batch(addrs);
                    Frame {
                        kind: FrameType::LookupResult,
                        seq: frame.seq,
                        payload: wire::encode_results(&results),
                    }
                }
                Err(e) => {
                    net.count_protocol_error(conn_id);
                    Frame {
                        kind: FrameType::Error,
                        seq: frame.seq,
                        payload: e.to_string().into_bytes(),
                    }
                }
            },
            FrameType::StatsQuery => Frame {
                kind: FrameType::StatsReply,
                seq: frame.seq,
                payload: format!(
                    "{{\"uptime_ms\":{},\"router\":{},\"net\":{}}}",
                    started.elapsed().as_millis(),
                    svc.stats().to_json(),
                    net.to_json()
                )
                .into_bytes(),
            },
            FrameType::Heartbeat => Frame::empty(FrameType::HeartbeatAck, frame.seq),
            FrameType::Shutdown => return,
            // Server-to-client types arriving here mean a confused
            // peer; cluster-plane types (replication, shard maps,
            // promotion) belong on the proxy/replication endpoints,
            // not a serving shard.
            FrameType::HelloAck
            | FrameType::UpdateAck
            | FrameType::LookupResult
            | FrameType::StatsReply
            | FrameType::HeartbeatAck
            | FrameType::Error
            | FrameType::ReplicaHello
            | FrameType::SnapshotChunk
            | FrameType::WalShip
            | FrameType::ShardMapQuery
            | FrameType::ShardMapReply
            | FrameType::Promote
            | FrameType::PromoteAck => {
                net.count_protocol_error(conn_id);
                let _ = send(
                    &stream,
                    net,
                    conn_id,
                    &Frame {
                        kind: FrameType::Error,
                        seq: frame.seq,
                        payload: format!("unexpected client frame {:?}", frame.kind).into_bytes(),
                    },
                );
                return;
            }
        };
        let fatal = reply.kind == FrameType::Error;
        if send(&stream, net, conn_id, &reply).is_err() {
            net.count_io_error(conn_id);
            return;
        }
        if fatal {
            return;
        }
    }
}
