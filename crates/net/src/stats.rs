//! Network-plane observability: aggregate frame/connection counters plus
//! a per-connection error ledger, rendered as hand-rolled JSON alongside
//! the router's [`StatsSnapshot`](clue_router::StatsSnapshot).

use std::sync::atomic::{AtomicU64, Ordering};

use parking_lot::Mutex;

/// Counters for one accepted connection (kept after it closes, so the
/// stats reply is a full session ledger, not just the live set).
#[derive(Debug, Clone)]
pub struct ConnStats {
    /// Server-assigned connection id (accept order, from 0).
    pub id: u64,
    /// Peer address as reported by accept.
    pub peer: String,
    /// Frames decoded from this peer.
    pub frames_in: u64,
    /// Frames written to this peer.
    pub frames_out: u64,
    /// Route updates submitted to the router on behalf of this peer.
    pub updates: u64,
    /// Updates rejected by `DropNewest` for this peer.
    pub update_drops: u64,
    /// Lookup addresses answered for this peer.
    pub lookups: u64,
    /// Undecodable frames (bad magic/version/CRC/payload) from this peer.
    pub protocol_errors: u64,
    /// Socket-level failures on this connection.
    pub io_errors: u64,
    /// Still connected?
    pub open: bool,
}

impl ConnStats {
    fn to_json(&self) -> String {
        format!(
            "{{\"id\":{},\"peer\":{:?},\"frames_in\":{},\"frames_out\":{},\
             \"updates\":{},\"update_drops\":{},\"lookups\":{},\
             \"protocol_errors\":{},\"io_errors\":{},\"open\":{}}}",
            self.id,
            self.peer,
            self.frames_in,
            self.frames_out,
            self.updates,
            self.update_drops,
            self.lookups,
            self.protocol_errors,
            self.io_errors,
            self.open,
        )
    }
}

/// The server's network-plane registry.
#[derive(Debug, Default)]
pub struct NetStats {
    accepted: AtomicU64,
    active: AtomicU64,
    frames_in: AtomicU64,
    frames_out: AtomicU64,
    protocol_errors: AtomicU64,
    io_errors: AtomicU64,
    accept_errors: AtomicU64,
    conns: Mutex<Vec<ConnStats>>,
}

impl NetStats {
    /// An empty registry.
    #[must_use]
    pub fn new() -> Self {
        NetStats::default()
    }

    /// Registers a freshly accepted connection; returns its id.
    pub fn register(&self, peer: String) -> u64 {
        self.accepted.fetch_add(1, Ordering::Relaxed);
        self.active.fetch_add(1, Ordering::Relaxed);
        let mut conns = self.conns.lock();
        let id = conns.len() as u64;
        conns.push(ConnStats {
            id,
            peer,
            frames_in: 0,
            frames_out: 0,
            updates: 0,
            update_drops: 0,
            lookups: 0,
            protocol_errors: 0,
            io_errors: 0,
            open: true,
        });
        id
    }

    /// Mutates connection `id`'s ledger under the registry lock.
    pub fn with_conn(&self, id: u64, f: impl FnOnce(&mut ConnStats)) {
        let mut conns = self.conns.lock();
        if let Some(c) = conns.get_mut(id as usize) {
            f(c);
        }
    }

    /// Counts one decoded inbound frame on connection `id`.
    pub fn count_frame_in(&self, id: u64) {
        self.frames_in.fetch_add(1, Ordering::Relaxed);
        self.with_conn(id, |c| c.frames_in += 1);
    }

    /// Counts one written outbound frame on connection `id`.
    pub fn count_frame_out(&self, id: u64) {
        self.frames_out.fetch_add(1, Ordering::Relaxed);
        self.with_conn(id, |c| c.frames_out += 1);
    }

    /// Counts a protocol (framing/decoding) error on connection `id`.
    pub fn count_protocol_error(&self, id: u64) {
        self.protocol_errors.fetch_add(1, Ordering::Relaxed);
        self.with_conn(id, |c| c.protocol_errors += 1);
    }

    /// Counts a socket error on connection `id`.
    pub fn count_io_error(&self, id: u64) {
        self.io_errors.fetch_add(1, Ordering::Relaxed);
        self.with_conn(id, |c| c.io_errors += 1);
    }

    /// Counts a failed `accept()` call (e.g. EMFILE/ENFILE fd
    /// exhaustion). These belong to no connection, so they live only in
    /// the aggregate — the accept loop pairs each one with a capped
    /// backoff sleep instead of spinning.
    pub fn count_accept_error(&self) {
        self.accept_errors.fetch_add(1, Ordering::Relaxed);
    }

    /// Marks connection `id` closed.
    pub fn close(&self, id: u64) {
        self.active.fetch_sub(1, Ordering::Relaxed);
        self.with_conn(id, |c| c.open = false);
    }

    /// Connections accepted so far.
    #[must_use]
    pub fn accepted(&self) -> u64 {
        self.accepted.load(Ordering::Relaxed)
    }

    /// Connections currently open.
    #[must_use]
    pub fn active(&self) -> u64 {
        self.active.load(Ordering::Relaxed)
    }

    /// Total protocol errors across all connections.
    #[must_use]
    pub fn protocol_errors(&self) -> u64 {
        self.protocol_errors.load(Ordering::Relaxed)
    }

    /// Total failed `accept()` calls.
    #[must_use]
    pub fn accept_errors(&self) -> u64 {
        self.accept_errors.load(Ordering::Relaxed)
    }

    /// Renders the registry as one JSON object.
    #[must_use]
    pub fn to_json(&self) -> String {
        let conns = self.conns.lock();
        let entries = conns
            .iter()
            .map(ConnStats::to_json)
            .collect::<Vec<_>>()
            .join(",");
        format!(
            "{{\"accepted\":{},\"active\":{},\"frames_in\":{},\"frames_out\":{},\
             \"protocol_errors\":{},\"io_errors\":{},\"accept_errors\":{},\
             \"connections\":[{}]}}",
            self.accepted.load(Ordering::Relaxed),
            self.active.load(Ordering::Relaxed),
            self.frames_in.load(Ordering::Relaxed),
            self.frames_out.load(Ordering::Relaxed),
            self.protocol_errors.load(Ordering::Relaxed),
            self.io_errors.load(Ordering::Relaxed),
            self.accept_errors.load(Ordering::Relaxed),
            entries,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ledger_tracks_per_connection_counts() {
        let stats = NetStats::new();
        let a = stats.register("127.0.0.1:1111".into());
        let b = stats.register("127.0.0.1:2222".into());
        assert_eq!((a, b), (0, 1));
        stats.count_frame_in(a);
        stats.count_frame_in(a);
        stats.count_frame_out(a);
        stats.count_protocol_error(b);
        stats.count_accept_error();
        stats.close(b);
        assert_eq!(stats.accepted(), 2);
        assert_eq!(stats.active(), 1);
        assert_eq!(stats.protocol_errors(), 1);
        assert_eq!(stats.accept_errors(), 1);

        let json = stats.to_json();
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert!(json.contains("\"accepted\":2"), "{json}");
        assert!(json.contains("\"frames_in\":2,\"frames_out\":1"), "{json}");
        assert!(json.contains("\"accept_errors\":1"), "{json}");
        assert!(json.contains("\"protocol_errors\":1,\"io_errors\":0,\"open\":false"));
    }
}
