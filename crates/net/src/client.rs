//! The client side: a [`Connection`] with heartbeats, read/write
//! timeouts, and reconnect-with-resume.
//!
//! Update frames carry client-assigned, monotonically increasing
//! sequence numbers and are buffered until acked. On any socket failure
//! the connection redials with capped exponential backoff, re-handshakes
//! (`Hello` carries the client's last acked seq, `HelloAck` answers with
//! the server's high-water accepted seq), discards buffered frames the
//! server already processed, and retransmits the rest **in order**.
//! Retransmitting a suffix that may partially overlap already-applied
//! work is safe because route updates are last-op-wins per prefix:
//! re-applying a sequence the server has already seen cannot change the
//! final table.

use std::collections::VecDeque;
use std::io::{self, ErrorKind};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::{Duration, Instant};

use clue_fib::{NextHop, Update};

use crate::frame::{Frame, FrameType};
use crate::wire;

/// Client tuning knobs.
#[derive(Debug, Clone)]
pub struct ClientConfig {
    /// Server address (`host:port`).
    pub addr: String,
    /// TCP connect timeout per dial attempt.
    pub connect_timeout: Duration,
    /// Socket read timeout (a reply slower than this fails the op).
    pub read_timeout: Duration,
    /// Socket write timeout.
    pub write_timeout: Duration,
    /// Send a liveness probe after this much idle time
    /// (see [`Connection::maybe_heartbeat`]).
    pub heartbeat_every: Duration,
    /// First reconnect backoff; doubles per failed attempt.
    pub initial_backoff: Duration,
    /// Backoff cap.
    pub max_backoff: Duration,
    /// Consecutive failed dials before giving up.
    pub max_reconnect_attempts: u32,
    /// Maximum update frames in flight before blocking on acks.
    pub ack_window: usize,
}

impl Default for ClientConfig {
    fn default() -> Self {
        ClientConfig {
            addr: "127.0.0.1:4555".to_string(),
            connect_timeout: Duration::from_secs(2),
            read_timeout: Duration::from_secs(10),
            write_timeout: Duration::from_secs(10),
            heartbeat_every: Duration::from_secs(1),
            initial_backoff: Duration::from_millis(25),
            max_backoff: Duration::from_secs(1),
            max_reconnect_attempts: 10,
            ack_window: 32,
        }
    }
}

impl ClientConfig {
    /// A config pointed at `addr` with default timeouts.
    #[must_use]
    pub fn to_addr(addr: impl Into<String>) -> Self {
        ClientConfig {
            addr: addr.into(),
            ..ClientConfig::default()
        }
    }
}

/// Final counters a closed connection hands back.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ClientReport {
    /// Updates acknowledged as accepted by the router.
    pub accepted: u64,
    /// Updates acknowledged as dropped (`DropNewest`).
    pub dropped: u64,
    /// Successful reconnects performed.
    pub reconnects: u64,
    /// Highest update frame seq the server acknowledged.
    pub last_acked: u64,
}

/// A live client connection. All operations are synchronous; update
/// submission pipelines up to [`ClientConfig::ack_window`] frames.
pub struct Connection {
    cfg: ClientConfig,
    stream: TcpStream,
    /// Next update frame seq to assign (seqs start at 1).
    next_seq: u64,
    /// Correlation counter for lookups/stats/heartbeats.
    next_token: u64,
    last_acked: u64,
    unacked: VecDeque<(u64, Vec<Update>)>,
    reconnects: u64,
    accepted: u64,
    dropped: u64,
    last_io: Instant,
}

fn timeout_err(msg: String) -> io::Error {
    io::Error::new(ErrorKind::TimedOut, msg)
}

impl Connection {
    /// Dials `cfg.addr` and performs the `Hello`/`HelloAck` handshake.
    ///
    /// # Errors
    ///
    /// Fails if the server is unreachable within the connect timeout or
    /// the handshake does not complete.
    pub fn connect(cfg: ClientConfig) -> io::Result<Connection> {
        let (stream, server_acked) = dial(&cfg, 0)?;
        Ok(Connection {
            cfg,
            stream,
            next_seq: server_acked + 1,
            next_token: 0,
            last_acked: server_acked,
            unacked: VecDeque::new(),
            reconnects: 0,
            accepted: 0,
            dropped: 0,
            last_io: Instant::now(),
        })
    }

    /// Successful reconnects so far.
    #[must_use]
    pub fn reconnects(&self) -> u64 {
        self.reconnects
    }

    /// Points future reconnects at a different address without touching
    /// the in-flight window. The live socket (if any) keeps serving
    /// until it errors; the next reconnect dials `addr`, re-runs the
    /// `Hello(last_acked)` resume handshake there, and retransmits the
    /// unacked suffix — this is how a proxy re-routes a shard's stream
    /// to a promoted standby with exactly-once semantics intact.
    pub fn redirect(&mut self, addr: impl Into<String>) {
        self.cfg.addr = addr.into();
    }

    /// The address this connection dials (after any [`redirect`](Self::redirect)).
    #[must_use]
    pub fn addr(&self) -> &str {
        &self.cfg.addr
    }

    /// Highest acked update frame seq.
    #[must_use]
    pub fn last_acked(&self) -> u64 {
        self.last_acked
    }

    /// Update frames sent but not yet acknowledged.
    #[must_use]
    pub fn in_flight(&self) -> usize {
        self.unacked.len()
    }

    /// Submits one batch of updates. Returns once the frame is written
    /// and the in-flight window is back under `ack_window`; earlier
    /// frames may be acked as a side effect.
    ///
    /// # Errors
    ///
    /// Fails only after reconnect attempts are exhausted; the batch
    /// stays buffered, so a later successful reconnect would resume it.
    pub fn send_updates(&mut self, batch: &[Update]) -> io::Result<()> {
        if batch.is_empty() {
            return Ok(());
        }
        let seq = self.next_seq;
        self.next_seq += 1;
        self.unacked.push_back((seq, batch.to_vec()));
        let frame = Frame {
            kind: FrameType::Update,
            seq,
            payload: wire::encode_updates(batch),
        };
        if frame.write_to(&mut &self.stream).is_err() {
            // reconnect() retransmits everything unacked, including the
            // frame just buffered.
            self.reconnect()?;
        }
        self.drain_acks_to(self.cfg.ack_window)
    }

    /// Blocks until every in-flight update frame is acknowledged.
    ///
    /// # Errors
    ///
    /// Fails after reconnect attempts are exhausted.
    pub fn flush_acks(&mut self) -> io::Result<()> {
        self.drain_acks_to(0)
    }

    fn drain_acks_to(&mut self, target: usize) -> io::Result<()> {
        let mut recoveries = 0u32;
        while self.unacked.len() > target {
            match Frame::read_from(&mut &self.stream) {
                Ok(frame) => {
                    self.absorb(&frame)?;
                    self.last_io = Instant::now();
                }
                Err(e) if e.kind() == ErrorKind::InvalidData => return Err(e),
                Err(_) if recoveries < 3 => {
                    recoveries += 1;
                    self.reconnect()?;
                }
                Err(e) => return Err(e),
            }
        }
        Ok(())
    }

    /// Resolves a batch of addresses. Safe to retry across reconnects
    /// (lookups are read-only).
    ///
    /// # Errors
    ///
    /// Fails after reconnect attempts are exhausted or on a protocol
    /// violation.
    pub fn lookup(&mut self, addrs: &[u32]) -> io::Result<Vec<Option<NextHop>>> {
        let token = self.fresh_token();
        let frame = Frame {
            kind: FrameType::Lookup,
            seq: token,
            payload: wire::encode_lookup(addrs),
        };
        let reply = self.request(&frame, FrameType::LookupResult)?;
        wire::decode_results(&reply.payload)
    }

    /// Fetches the server's stats document (JSON).
    ///
    /// # Errors
    ///
    /// Fails after reconnect attempts are exhausted or on a protocol
    /// violation.
    pub fn stats_json(&mut self) -> io::Result<String> {
        let token = self.fresh_token();
        let frame = Frame::empty(FrameType::StatsQuery, token);
        let reply = self.request(&frame, FrameType::StatsReply)?;
        String::from_utf8(reply.payload)
            .map_err(|e| io::Error::new(ErrorKind::InvalidData, format!("stats not UTF-8: {e}")))
    }

    /// Sends a liveness probe and waits for its echo.
    ///
    /// # Errors
    ///
    /// Fails after reconnect attempts are exhausted.
    pub fn heartbeat(&mut self) -> io::Result<()> {
        let token = self.fresh_token();
        let frame = Frame::empty(FrameType::Heartbeat, token);
        self.request(&frame, FrameType::HeartbeatAck).map(|_| ())
    }

    /// Heartbeats only if the line has been idle longer than
    /// [`ClientConfig::heartbeat_every`].
    ///
    /// # Errors
    ///
    /// Same as [`Connection::heartbeat`].
    pub fn maybe_heartbeat(&mut self) -> io::Result<()> {
        if self.last_io.elapsed() >= self.cfg.heartbeat_every {
            self.heartbeat()
        } else {
            Ok(())
        }
    }

    /// Flushes outstanding acks, announces an orderly close, and returns
    /// the final counters.
    ///
    /// # Errors
    ///
    /// Fails if the final flush cannot complete.
    pub fn close(mut self) -> io::Result<ClientReport> {
        self.flush_acks()?;
        let _ = Frame::empty(FrameType::Shutdown, 0).write_to(&mut &self.stream);
        Ok(ClientReport {
            accepted: self.accepted,
            dropped: self.dropped,
            reconnects: self.reconnects,
            last_acked: self.last_acked,
        })
    }

    fn fresh_token(&mut self) -> u64 {
        self.next_token += 1;
        self.next_token
    }

    /// Writes `frame` and pumps replies until `want` (matching seq)
    /// arrives, reconnect-retrying the whole exchange on socket errors.
    fn request(&mut self, frame: &Frame, want: FrameType) -> io::Result<Frame> {
        let mut recoveries = 0u32;
        loop {
            let attempt = frame
                .write_to(&mut &self.stream)
                .and_then(|()| self.wait_for(want, frame.seq));
            match attempt {
                Ok(reply) => {
                    self.last_io = Instant::now();
                    return Ok(reply);
                }
                Err(e) if e.kind() == ErrorKind::InvalidData => return Err(e),
                Err(_) if recoveries < 3 => {
                    recoveries += 1;
                    self.reconnect()?;
                }
                Err(e) => return Err(e),
            }
        }
    }

    fn wait_for(&mut self, want: FrameType, want_seq: u64) -> io::Result<Frame> {
        loop {
            let frame = Frame::read_from(&mut &self.stream)?;
            if frame.kind == want && frame.seq == want_seq {
                // Acks absorbed below never match here: `want` is always
                // a reply type with a fresh token.
                return Ok(frame);
            }
            self.absorb(&frame)?;
        }
    }

    /// Processes a housekeeping frame (acks, stale heartbeat echoes);
    /// anything else is a protocol violation.
    fn absorb(&mut self, frame: &Frame) -> io::Result<()> {
        match frame.kind {
            FrameType::UpdateAck => {
                let ack = wire::decode_ack(&frame.payload)?;
                if frame.seq > self.last_acked {
                    self.last_acked = frame.seq;
                    self.accepted += u64::from(ack.accepted);
                    self.dropped += u64::from(ack.dropped);
                    // Acks arrive in order on one stream; everything up
                    // to this seq is settled (earlier acks may have been
                    // lost to a reconnect).
                    while self.unacked.front().is_some_and(|(s, _)| *s <= frame.seq) {
                        self.unacked.pop_front();
                    }
                }
                Ok(())
            }
            FrameType::HeartbeatAck => Ok(()),
            FrameType::Shutdown => Err(io::Error::new(
                ErrorKind::ConnectionAborted,
                "server is shutting down",
            )),
            FrameType::Error => Err(io::Error::new(
                ErrorKind::InvalidData,
                format!("server error: {}", String::from_utf8_lossy(&frame.payload)),
            )),
            other => Err(io::Error::new(
                ErrorKind::InvalidData,
                format!("unexpected frame {other:?} from server"),
            )),
        }
    }

    /// Redials with capped exponential backoff and resumes: frames the
    /// server already acked (per `HelloAck`) are settled, the rest are
    /// retransmitted in order with their original seqs.
    fn reconnect(&mut self) -> io::Result<()> {
        let mut backoff = self.cfg.initial_backoff;
        let mut last_err = timeout_err("no reconnect attempt made".to_string());
        for _ in 0..self.cfg.max_reconnect_attempts {
            std::thread::sleep(backoff);
            backoff = (backoff * 2).min(self.cfg.max_backoff);
            match self.try_resume() {
                Ok(()) => {
                    self.reconnects += 1;
                    self.last_io = Instant::now();
                    return Ok(());
                }
                Err(e) => last_err = e,
            }
        }
        Err(timeout_err(format!(
            "reconnect to {} failed after {} attempts: {last_err}",
            self.cfg.addr, self.cfg.max_reconnect_attempts
        )))
    }

    fn try_resume(&mut self) -> io::Result<()> {
        let (stream, server_acked) = dial(&self.cfg, self.last_acked)?;
        if server_acked > self.last_acked {
            // Processed before the line dropped, ack lost in flight. The
            // ack's accepted/dropped split is gone with it; count the
            // batch as accepted (the server's own stats carry the
            // authoritative drop counts).
            self.last_acked = server_acked;
            while self
                .unacked
                .front()
                .is_some_and(|(s, _)| *s <= server_acked)
            {
                let (_, batch) = self.unacked.pop_front().expect("front checked");
                self.accepted += batch.len() as u64;
            }
        }
        for (seq, batch) in &self.unacked {
            Frame {
                kind: FrameType::Update,
                seq: *seq,
                payload: wire::encode_updates(batch),
            }
            .write_to(&mut &stream)?;
        }
        self.stream = stream;
        Ok(())
    }
}

/// One dial + handshake. `my_acked` tells the server where this client
/// believes the update stream stands; the reply is the server's own
/// high-water mark.
fn dial(cfg: &ClientConfig, my_acked: u64) -> io::Result<(TcpStream, u64)> {
    let addr =
        cfg.addr.to_socket_addrs()?.next().ok_or_else(|| {
            io::Error::new(ErrorKind::InvalidInput, "address resolved to nothing")
        })?;
    let stream = TcpStream::connect_timeout(&addr, cfg.connect_timeout)?;
    stream.set_nodelay(true)?;
    stream.set_read_timeout(Some(cfg.read_timeout))?;
    stream.set_write_timeout(Some(cfg.write_timeout))?;
    Frame {
        kind: FrameType::Hello,
        seq: my_acked,
        payload: wire::encode_u64(my_acked),
    }
    .write_to(&mut &stream)?;
    let reply = Frame::read_from(&mut &stream)?;
    if reply.kind != FrameType::HelloAck {
        return Err(io::Error::new(
            ErrorKind::InvalidData,
            format!("expected HelloAck, got {:?}", reply.kind),
        ));
    }
    let server_acked = wire::decode_u64(&reply.payload)?;
    Ok((stream, server_acked))
}
