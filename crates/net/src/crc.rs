//! CRC-32 over frame bytes.
//!
//! The implementation lives in [`clue_core::crc`] so that the wire
//! framing here and the `clue-store` write-ahead journal share one
//! checked checksum instead of two copies; this module re-exports it
//! under the historical `clue_net::crc` path.

pub use clue_core::crc::{crc32, update};
