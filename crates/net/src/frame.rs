//! The length-prefixed, CRC-checked frame that carries every message.
//!
//! Layout (all integers big-endian):
//!
//! ```text
//! offset  size  field
//!      0     4  magic    0x434C5545 ("CLUE")
//!      4     1  version  1
//!      5     1  type     FrameType discriminant
//!      6     8  seq      sender-assigned sequence / correlation id
//!     14     4  len      payload length in bytes
//!     18   len  payload  type-specific encoding (see `wire`)
//!  18+len     4  crc      CRC-32 over bytes [0, 18+len)
//! ```
//!
//! The CRC covers the header *and* payload, so a corrupted length field
//! cannot silently resynchronize the stream on garbage: either the
//! oversized read fails or the checksum does. Decoding errors surface as
//! [`std::io::ErrorKind::InvalidData`], which receivers treat as fatal
//! for the connection (the stream has lost framing).

use std::io::{self, Read, Write};

use crate::crc::crc32;

/// Frame magic: `"CLUE"` as a big-endian u32.
pub const MAGIC: u32 = 0x434C_5545;
/// Current protocol version.
pub const VERSION: u8 = 1;
/// Fixed header size (magic + version + type + seq + len).
pub const HEADER_LEN: usize = 18;
/// Refuse payloads beyond this (a corrupt length would otherwise ask us
/// to allocate gigabytes before the CRC gets a chance to object).
pub const MAX_PAYLOAD: u32 = 16 * 1024 * 1024;

/// Every message kind the protocol carries.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum FrameType {
    /// Client → server greeting; payload = client's last acked seq.
    Hello = 1,
    /// Server → client; payload = server's high-water accepted seq.
    HelloAck = 2,
    /// Client → server batch of route updates; seq identifies the batch.
    Update = 3,
    /// Server → client; echoes the update seq, payload = accepted/dropped.
    UpdateAck = 4,
    /// Client → server batch of lookup addresses; seq correlates.
    Lookup = 5,
    /// Server → client lookup answers, in request order.
    LookupResult = 6,
    /// Client → server stats request (empty payload).
    StatsQuery = 7,
    /// Server → client; payload = stats JSON (UTF-8).
    StatsReply = 8,
    /// Liveness probe; seq is a nonce.
    Heartbeat = 9,
    /// Echoes the heartbeat nonce.
    HeartbeatAck = 10,
    /// Orderly close (either direction); no further frames follow.
    Shutdown = 11,
    /// Fatal protocol error; payload = UTF-8 message.
    Error = 12,
    /// Follower → primary replication greeting; payload = the
    /// follower's applied journal position (`u64::MAX` = no state,
    /// ship a snapshot first). Answered with [`FrameType::HelloAck`]
    /// whose payload is the journal position the stream resumes after.
    ReplicaHello = 13,
    /// Primary → follower snapshot transfer; seq = chunk index,
    /// payload = `is_last` byte + raw snapshot bytes (see
    /// [`crate::wire::encode_chunk`]).
    SnapshotChunk = 14,
    /// Primary → follower journal record; seq = the record's jseq,
    /// payload = the encoded `clue-store` WAL record. Acked with
    /// [`FrameType::UpdateAck`] echoing the jseq.
    WalShip = 15,
    /// Client → proxy shard-map request (empty payload).
    ShardMapQuery = 16,
    /// Proxy → client; payload = the encoded versioned shard map.
    ShardMapReply = 17,
    /// Proxy → standby: take over as primary (empty payload).
    Promote = 18,
    /// Standby → proxy; payload = u64 sequence high-water the promoted
    /// node resumes client acks from.
    PromoteAck = 19,
}

impl FrameType {
    /// Decodes a wire discriminant.
    #[must_use]
    pub fn from_u8(v: u8) -> Option<FrameType> {
        use FrameType::*;
        Some(match v {
            1 => Hello,
            2 => HelloAck,
            3 => Update,
            4 => UpdateAck,
            5 => Lookup,
            6 => LookupResult,
            7 => StatsQuery,
            8 => StatsReply,
            9 => Heartbeat,
            10 => HeartbeatAck,
            11 => Shutdown,
            12 => Error,
            13 => ReplicaHello,
            14 => SnapshotChunk,
            15 => WalShip,
            16 => ShardMapQuery,
            17 => ShardMapReply,
            18 => Promote,
            19 => PromoteAck,
            _ => return None,
        })
    }
}

/// One decoded frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Frame {
    /// Message kind.
    pub kind: FrameType,
    /// Sequence / correlation id (meaning depends on `kind`).
    pub seq: u64,
    /// Type-specific payload bytes (see [`crate::wire`]).
    pub payload: Vec<u8>,
}

fn bad(msg: String) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg)
}

impl Frame {
    /// A frame with an empty payload.
    #[must_use]
    pub fn empty(kind: FrameType, seq: u64) -> Frame {
        Frame {
            kind,
            seq,
            payload: Vec::new(),
        }
    }

    /// Serializes header + payload + CRC into one buffer.
    #[must_use]
    pub fn encode(&self) -> Vec<u8> {
        assert!(
            self.payload.len() <= MAX_PAYLOAD as usize,
            "payload of {} bytes exceeds MAX_PAYLOAD",
            self.payload.len()
        );
        let mut buf = Vec::with_capacity(HEADER_LEN + self.payload.len() + 4);
        buf.extend_from_slice(&MAGIC.to_be_bytes());
        buf.push(VERSION);
        buf.push(self.kind as u8);
        buf.extend_from_slice(&self.seq.to_be_bytes());
        buf.extend_from_slice(&(self.payload.len() as u32).to_be_bytes());
        buf.extend_from_slice(&self.payload);
        let crc = crc32(&buf);
        buf.extend_from_slice(&crc.to_be_bytes());
        buf
    }

    /// Writes the encoded frame to `w` (single `write_all`).
    pub fn write_to<W: Write>(&self, w: &mut W) -> io::Result<()> {
        w.write_all(&self.encode())
    }

    /// Reads and validates one frame from `r`.
    ///
    /// Returns `ErrorKind::UnexpectedEof` on a clean close at a frame
    /// boundary and `ErrorKind::InvalidData` on bad magic/version/type,
    /// an oversized length, or a CRC mismatch.
    pub fn read_from<R: Read>(r: &mut R) -> io::Result<Frame> {
        let mut first = [0u8; 1];
        r.read_exact(&mut first)?;
        Frame::read_after_lead(first[0], r)
    }

    /// Reads the remainder of a frame whose first byte was already
    /// consumed (the server's idle-poll reads one byte with a short
    /// timeout, then finishes the frame with a longer one).
    pub fn read_after_lead<R: Read>(lead: u8, r: &mut R) -> io::Result<Frame> {
        let mut header = [0u8; HEADER_LEN];
        header[0] = lead;
        r.read_exact(&mut header[1..])?;

        let magic = u32::from_be_bytes(header[0..4].try_into().unwrap());
        if magic != MAGIC {
            return Err(bad(format!("bad magic {magic:#010x}")));
        }
        let version = header[4];
        if version != VERSION {
            return Err(bad(format!("unsupported protocol version {version}")));
        }
        let kind = FrameType::from_u8(header[5])
            .ok_or_else(|| bad(format!("unknown frame type {}", header[5])))?;
        let seq = u64::from_be_bytes(header[6..14].try_into().unwrap());
        let len = u32::from_be_bytes(header[14..18].try_into().unwrap());
        if len > MAX_PAYLOAD {
            return Err(bad(format!("payload length {len} exceeds {MAX_PAYLOAD}")));
        }

        let mut payload = vec![0u8; len as usize];
        r.read_exact(&mut payload)?;
        let mut crc_bytes = [0u8; 4];
        r.read_exact(&mut crc_bytes)?;
        let got = u32::from_be_bytes(crc_bytes);

        let expect = {
            let state = crate::crc::update(0xFFFF_FFFF, &header);
            crate::crc::update(state, &payload) ^ 0xFFFF_FFFF
        };
        if got != expect {
            return Err(bad(format!(
                "crc mismatch: got {got:#010x}, want {expect:#010x}"
            )));
        }
        Ok(Frame { kind, seq, payload })
    }
}

impl Frame {
    /// Attempts to decode one frame from the front of `buf` without
    /// blocking: the incremental counterpart of [`Frame::read_from`]
    /// for nonblocking sockets, where a frame arrives in arbitrary
    /// slices.
    ///
    /// Returns `Ok(Some((frame, consumed)))` when a complete valid
    /// frame sits at the front, `Ok(None)` when more bytes are needed,
    /// and `Err(InvalidData)` as soon as the prefix *cannot* become a
    /// valid frame — bad magic bytes, version, type, or an oversized
    /// length fail before the rest of the frame (or even the rest of
    /// the header) arrives, so garbage is rejected without being
    /// buffered to a frame boundary that will never come.
    ///
    /// # Errors
    ///
    /// `ErrorKind::InvalidData` exactly where [`Frame::read_after_lead`]
    /// would fail: bad magic/version/type, oversized length, or CRC
    /// mismatch.
    pub fn try_decode(buf: &[u8]) -> io::Result<Option<(Frame, usize)>> {
        // Validate the fixed fields as their bytes arrive.
        let magic_bytes = MAGIC.to_be_bytes();
        for (i, &b) in buf.iter().take(4).enumerate() {
            if b != magic_bytes[i] {
                let got = u32::from_be_bytes([
                    *buf.first().unwrap_or(&0),
                    *buf.get(1).unwrap_or(&0),
                    *buf.get(2).unwrap_or(&0),
                    *buf.get(3).unwrap_or(&0),
                ]);
                return Err(bad(format!("bad magic {got:#010x}")));
            }
        }
        if let Some(&version) = buf.get(4) {
            if version != VERSION {
                return Err(bad(format!("unsupported protocol version {version}")));
            }
        }
        let kind = match buf.get(5) {
            None => return Ok(None),
            Some(&t) => {
                FrameType::from_u8(t).ok_or_else(|| bad(format!("unknown frame type {t}")))?
            }
        };
        if buf.len() < HEADER_LEN {
            return Ok(None);
        }
        let seq = u64::from_be_bytes(buf[6..14].try_into().unwrap());
        let len = u32::from_be_bytes(buf[14..18].try_into().unwrap());
        if len > MAX_PAYLOAD {
            return Err(bad(format!("payload length {len} exceeds {MAX_PAYLOAD}")));
        }
        let total = HEADER_LEN + len as usize + 4;
        if buf.len() < total {
            return Ok(None);
        }
        let got = u32::from_be_bytes(buf[total - 4..total].try_into().unwrap());
        let expect = crc32(&buf[..total - 4]);
        if got != expect {
            return Err(bad(format!(
                "crc mismatch: got {got:#010x}, want {expect:#010x}"
            )));
        }
        Ok(Some((
            Frame {
                kind,
                seq,
                payload: buf[HEADER_LEN..total - 4].to_vec(),
            },
            total,
        )))
    }
}

/// Per-connection incremental frame decoder: feed byte slices as the
/// socket produces them, pull complete frames out.
///
/// Equivalent to [`Frame::read_from`] over the concatenation of
/// everything fed (the equivalence is property-tested against the
/// corruption corpus), but never blocks and never needs the stream
/// positioned at a frame boundary. A decode error is sticky — once the
/// stream has lost framing every subsequent poll reports the same
/// error, matching the connection-fatal semantics of the blocking
/// path.
#[derive(Debug, Default)]
pub struct FrameDecoder {
    buf: Vec<u8>,
    /// Consumed prefix, compacted lazily so per-frame drains stay O(1)
    /// amortized.
    pos: usize,
    poisoned: bool,
}

impl FrameDecoder {
    /// An empty decoder.
    #[must_use]
    pub fn new() -> FrameDecoder {
        FrameDecoder::default()
    }

    /// Appends raw socket bytes.
    pub fn extend(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// Bytes fed but not yet decoded into frames.
    #[must_use]
    pub fn buffered(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Pulls the next complete frame, `Ok(None)` if more bytes are
    /// needed.
    ///
    /// # Errors
    ///
    /// `ErrorKind::InvalidData` once the stream cannot decode (sticky:
    /// repeats on every later call).
    pub fn poll_frame(&mut self) -> io::Result<Option<Frame>> {
        if self.poisoned {
            return Err(bad("frame stream previously lost framing".to_string()));
        }
        match Frame::try_decode(&self.buf[self.pos..]) {
            Ok(Some((frame, used))) => {
                self.pos += used;
                if self.pos > 4096 && self.pos * 2 >= self.buf.len() {
                    self.buf.drain(..self.pos);
                    self.pos = 0;
                }
                Ok(Some(frame))
            }
            Ok(None) => Ok(None),
            Err(e) => {
                self.poisoned = true;
                Err(e)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_through_a_byte_stream() {
        let frames = [
            Frame::empty(FrameType::Heartbeat, 7),
            Frame {
                kind: FrameType::Update,
                seq: u64::MAX,
                payload: (0..=255u8).collect(),
            },
            Frame {
                kind: FrameType::Error,
                seq: 0,
                payload: b"boom".to_vec(),
            },
        ];
        let mut stream = Vec::new();
        for f in &frames {
            f.write_to(&mut stream).unwrap();
        }
        let mut r = &stream[..];
        for f in &frames {
            assert_eq!(&Frame::read_from(&mut r).unwrap(), f);
        }
        assert_eq!(
            Frame::read_from(&mut r).unwrap_err().kind(),
            io::ErrorKind::UnexpectedEof
        );
    }

    #[test]
    fn corruption_anywhere_is_detected() {
        let frame = Frame {
            kind: FrameType::Lookup,
            seq: 42,
            payload: vec![1, 2, 3, 4, 5, 6, 7, 8],
        };
        let bytes = frame.encode();
        for i in 0..bytes.len() {
            let mut bad = bytes.clone();
            bad[i] ^= 0x40;
            let err = Frame::read_from(&mut &bad[..]).expect_err("corruption must not decode");
            // Either framing rejects it outright or the CRC catches it;
            // a corrupted length can also truncate into EOF.
            assert!(
                matches!(
                    err.kind(),
                    io::ErrorKind::InvalidData | io::ErrorKind::UnexpectedEof
                ),
                "byte {i}: unexpected error {err}"
            );
        }
    }

    #[test]
    fn oversized_length_is_rejected_before_allocation() {
        let frame = Frame::empty(FrameType::StatsQuery, 1);
        let mut bytes = frame.encode();
        // Forge the length field to 1 GiB; CRC would also fail, but the
        // length guard must fire first (no 1 GiB allocation attempt).
        bytes[14..18].copy_from_slice(&(1u32 << 30).to_be_bytes());
        let err = Frame::read_from(&mut &bytes[..]).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        assert!(err.to_string().contains("exceeds"), "{err}");
    }

    #[test]
    fn every_type_round_trips_its_discriminant() {
        for v in 1..=19u8 {
            let t = FrameType::from_u8(v).unwrap();
            assert_eq!(t as u8, v);
        }
        assert_eq!(FrameType::from_u8(0), None);
        assert_eq!(FrameType::from_u8(20), None);
    }
}
