//! SIGINT/SIGTERM → graceful drain, with no dependency on a signal
//! crate: a `libc::signal` FFI declaration installs a handler that does
//! the only async-signal-safe thing worth doing — set an atomic flag.
//! `clue serve` polls [`triggered`] and starts the server drain when it
//! flips.
//!
//! On non-Unix targets the module compiles to no-ops ([`install`] does
//! nothing and [`triggered`] is always false), keeping callers
//! platform-agnostic.

#[cfg(unix)]
mod imp {
    use std::sync::atomic::{AtomicBool, Ordering};

    static TRIGGERED: AtomicBool = AtomicBool::new(false);

    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;

    extern "C" {
        fn signal(signum: i32, handler: extern "C" fn(i32)) -> isize;
    }

    extern "C" fn on_signal(_signum: i32) {
        TRIGGERED.store(true, Ordering::SeqCst);
    }

    /// Installs the flag-setting handler for SIGINT and SIGTERM.
    /// Idempotent; later installs just re-point to the same handler.
    pub fn install() {
        unsafe {
            signal(SIGINT, on_signal);
            signal(SIGTERM, on_signal);
        }
    }

    /// True once SIGINT or SIGTERM has been delivered since the last
    /// [`reset`].
    #[must_use]
    pub fn triggered() -> bool {
        TRIGGERED.load(Ordering::SeqCst)
    }

    /// Clears the flag (tests; a server restarting its accept loop).
    pub fn reset() {
        TRIGGERED.store(false, Ordering::SeqCst);
    }
}

#[cfg(not(unix))]
mod imp {
    /// No-op off Unix.
    pub fn install() {}

    /// Always false off Unix.
    #[must_use]
    pub fn triggered() -> bool {
        false
    }

    /// No-op off Unix.
    pub fn reset() {}
}

pub use imp::{install, reset, triggered};

#[cfg(all(test, unix))]
mod tests {
    use super::*;

    extern "C" {
        fn raise(signum: i32) -> i32;
    }

    #[test]
    fn sigterm_sets_the_flag() {
        install();
        reset();
        assert!(!triggered());
        // With the handler installed, raising SIGTERM at ourselves is
        // harmless: it sets the flag instead of killing the process.
        unsafe {
            raise(15);
        }
        assert!(triggered());
        reset();
        assert!(!triggered());
    }
}
