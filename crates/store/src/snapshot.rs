//! Versioned binary snapshots of the router's durable state.
//!
//! ## File layout (all integers big-endian)
//!
//! ```text
//! magic       u32   0x434C_534E ("CLSN")
//! version     u32   1
//! jseq        u64   journal records ≤ jseq are folded into this file
//! epoch       u64   last published epoch at the boundary
//! seq_hw      u64   journaled ingress-sequence high-water
//! raw_total   u64   cumulative raw updates folded in (trace offset)
//! chips       u32   worker/chip count
//! cuts        u32 count, then count × u32 partition cut points
//! table       u32 count, then count × (bits u32, len u8, hop u16)
//! compressed  same encoding as table
//! dreds       chips × (u32 count, then count × route records)
//! crc         u32   CRC-32 over every preceding byte
//! ```
//!
//! The *original* table is the unit of recovery — the compressed table
//! alone cannot reproduce merge/withdraw behavior, because ONRTC merges
//! are not invertible. The compressed copy is stored anyway and doubles
//! as a deep integrity check: [`load_snapshot`] recompresses the
//! recovered table and rejects the file if the two disagree, so a
//! snapshot that decodes but lies is treated exactly like a torn one
//! (recovery falls back to the next-older snapshot).
//!
//! Writes are atomic: the file is assembled in a `.tmp` sibling,
//! `sync_all`-ed, then renamed over the final `snap-<jseq:016x>.csnap`
//! name, with a best-effort directory sync after the rename.

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

use clue_compress::onrtc;
use clue_core::codec::{bad_data, Cursor};
use clue_core::crc::crc32;
use clue_fib::{NextHop, Prefix, Route, RouteTable};

/// Snapshot magic, "CLSN".
pub const SNAP_MAGIC: u32 = 0x434C_534E;
/// Snapshot format version.
pub const SNAP_VERSION: u32 = 1;

/// One decoded snapshot.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Snapshot {
    /// Journal records ≤ `jseq` are folded into this snapshot.
    pub jseq: u64,
    /// Last published epoch at the boundary.
    pub epoch: u64,
    /// Journaled ingress-sequence high-water.
    pub seq_hw: u64,
    /// Cumulative raw updates folded in (the exact update-trace offset
    /// this state corresponds to).
    pub raw_total: u64,
    /// Worker/chip count.
    pub chips: u32,
    /// Partition cut points in force at the boundary.
    pub cuts: Vec<u32>,
    /// The original route table.
    pub table: RouteTable,
    /// The ONRTC-compressed table (integrity twin of `table`).
    pub compressed: RouteTable,
    /// Per-chip DRed contents.
    pub dreds: Vec<Vec<Route>>,
}

fn put_table(buf: &mut Vec<u8>, len: usize, routes: impl Iterator<Item = Route>) {
    buf.extend_from_slice(&(len as u32).to_be_bytes());
    for r in routes {
        buf.extend_from_slice(&r.prefix.bits().to_be_bytes());
        buf.push(r.prefix.len());
        buf.extend_from_slice(&r.next_hop.0.to_be_bytes());
    }
}

fn get_routes(c: &mut Cursor<'_>) -> io::Result<Vec<Route>> {
    let count = c.u32()? as usize;
    let mut out = Vec::with_capacity(count.min(1 << 20));
    for i in 0..count {
        let bits = c.u32()?;
        let len = c.u8()?;
        if len > 32 {
            return Err(bad_data(format!("route {i}: prefix length {len} > 32")));
        }
        out.push(Route::new(Prefix::new(bits, len), NextHop(c.u16()?)));
    }
    Ok(out)
}

/// Encodes a snapshot, CRC included.
#[must_use]
pub fn encode_snapshot(snap: &Snapshot) -> Vec<u8> {
    let mut buf = Vec::new();
    buf.extend_from_slice(&SNAP_MAGIC.to_be_bytes());
    buf.extend_from_slice(&SNAP_VERSION.to_be_bytes());
    buf.extend_from_slice(&snap.jseq.to_be_bytes());
    buf.extend_from_slice(&snap.epoch.to_be_bytes());
    buf.extend_from_slice(&snap.seq_hw.to_be_bytes());
    buf.extend_from_slice(&snap.raw_total.to_be_bytes());
    buf.extend_from_slice(&snap.chips.to_be_bytes());
    buf.extend_from_slice(&(snap.cuts.len() as u32).to_be_bytes());
    for &cut in &snap.cuts {
        buf.extend_from_slice(&cut.to_be_bytes());
    }
    put_table(&mut buf, snap.table.len(), snap.table.iter());
    put_table(&mut buf, snap.compressed.len(), snap.compressed.iter());
    for dred in &snap.dreds {
        put_table(&mut buf, dred.len(), dred.iter().copied());
    }
    buf.extend_from_slice(&crc32(&buf).to_be_bytes());
    buf
}

/// Decodes a snapshot and verifies both its CRC and its semantic
/// integrity (`compressed == onrtc(table)`).
///
/// # Errors
///
/// `InvalidData` on any structural, checksum, or integrity failure.
/// Never panics, whatever the bytes.
pub fn decode_snapshot(bytes: &[u8]) -> io::Result<Snapshot> {
    if bytes.len() < 4 {
        return Err(bad_data("snapshot shorter than its CRC".into()));
    }
    let (body, crc_bytes) = bytes.split_at(bytes.len() - 4);
    let crc = u32::from_be_bytes(crc_bytes.try_into().expect("4 bytes"));
    if crc != crc32(body) {
        return Err(bad_data("snapshot CRC mismatch".into()));
    }

    let mut c = Cursor::new(body);
    let magic = c.u32()?;
    if magic != SNAP_MAGIC {
        return Err(bad_data(format!("bad snapshot magic {magic:#010x}")));
    }
    let version = c.u32()?;
    if version != SNAP_VERSION {
        return Err(bad_data(format!("unsupported snapshot version {version}")));
    }
    let jseq = c.u64()?;
    let epoch = c.u64()?;
    let seq_hw = c.u64()?;
    let raw_total = c.u64()?;
    let chips = c.u32()?;
    if chips == 0 || chips > 4096 {
        return Err(bad_data(format!("implausible chip count {chips}")));
    }
    let cut_count = c.u32()? as usize;
    let mut cuts = Vec::with_capacity(cut_count.min(1 << 16));
    for _ in 0..cut_count {
        cuts.push(c.u32()?);
    }
    let table: RouteTable = get_routes(&mut c)?.into_iter().collect();
    let compressed: RouteTable = get_routes(&mut c)?.into_iter().collect();
    let mut dreds = Vec::with_capacity(chips as usize);
    for _ in 0..chips {
        dreds.push(get_routes(&mut c)?);
    }
    c.finish()?;

    if table.is_empty() {
        return Err(bad_data("snapshot holds an empty table".into()));
    }
    if onrtc(&table) != compressed {
        return Err(bad_data(
            "snapshot integrity failure: stored compressed table is not onrtc(table)".into(),
        ));
    }
    Ok(Snapshot {
        jseq,
        epoch,
        seq_hw,
        raw_total,
        chips,
        cuts,
        table,
        compressed,
        dreds,
    })
}

/// The file name of the snapshot at journal position `jseq`.
#[must_use]
pub fn snapshot_name(jseq: u64) -> String {
    format!("snap-{jseq:016x}.csnap")
}

/// Lists a data dir's snapshots, newest (highest `jseq`) first.
///
/// # Errors
///
/// Propagates directory-read errors.
pub fn list_snapshots(dir: &Path) -> io::Result<Vec<PathBuf>> {
    let mut snaps = Vec::new();
    for entry in fs::read_dir(dir)? {
        let path = entry?.path();
        let name = path.file_name().and_then(|n| n.to_str()).unwrap_or("");
        if name.starts_with("snap-") && name.ends_with(".csnap") {
            snaps.push(path);
        }
    }
    snaps.sort();
    snaps.reverse();
    Ok(snaps)
}

/// Atomically writes `snap` into `dir`: tmp file → `sync_all` → rename
/// → best-effort directory sync.
///
/// # Errors
///
/// Propagates I/O failures; a failed write leaves at most a `.tmp`
/// sibling behind, never a half-written snapshot under the final name.
pub fn write_snapshot(dir: &Path, snap: &Snapshot) -> io::Result<PathBuf> {
    let bytes = encode_snapshot(snap);
    let final_path = dir.join(snapshot_name(snap.jseq));
    let tmp_path = dir.join(format!("{}.tmp", snapshot_name(snap.jseq)));
    {
        let mut f = fs::File::create(&tmp_path)?;
        io::Write::write_all(&mut f, &bytes)?;
        f.sync_all()?;
    }
    fs::rename(&tmp_path, &final_path)?;
    if let Ok(d) = fs::File::open(dir) {
        let _ = d.sync_all();
    }
    Ok(final_path)
}

/// Reads and validates the snapshot at `path`.
///
/// # Errors
///
/// I/O errors reading the file, plus everything [`decode_snapshot`]
/// rejects.
pub fn load_snapshot(path: &Path) -> io::Result<Snapshot> {
    decode_snapshot(&fs::read(path)?)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Snapshot {
        let table: RouteTable = (0..64u32)
            .map(|i| Route::new(Prefix::new(i << 24, 8), NextHop((i % 7) as u16)))
            .collect();
        let compressed = onrtc(&table);
        Snapshot {
            jseq: 42,
            epoch: 9,
            seq_hw: 1234,
            raw_total: 5000,
            chips: 4,
            cuts: vec![0x2000_0000, 0x8000_0000, 0xC000_0000],
            dreds: vec![
                vec![Route::new(Prefix::new(0x0100_0000, 8), NextHop(1))],
                Vec::new(),
                vec![Route::new(Prefix::new(0x0200_0000, 8), NextHop(2))],
                Vec::new(),
            ],
            table,
            compressed,
        }
    }

    #[test]
    fn snapshots_round_trip() {
        let snap = sample();
        let back = decode_snapshot(&encode_snapshot(&snap)).unwrap();
        assert_eq!(back, snap);
    }

    #[test]
    fn corruption_is_rejected() {
        let bytes = encode_snapshot(&sample());
        // Truncation at a sampling of offsets.
        for cut in [0, 1, 4, bytes.len() / 2, bytes.len() - 1] {
            assert!(decode_snapshot(&bytes[..cut]).is_err(), "cut at {cut}");
        }
        // A flip anywhere breaks the whole-file CRC.
        for at in (0..bytes.len()).step_by(37) {
            let mut b = bytes.clone();
            b[at] ^= 0x40;
            assert!(decode_snapshot(&b).is_err(), "flip at {at}");
        }
    }

    #[test]
    fn semantic_integrity_is_enforced() {
        // A snapshot whose stored compressed table disagrees with
        // onrtc(table) decodes structurally but must still be rejected.
        let mut snap = sample();
        snap.compressed
            .insert(Prefix::new(0xFE00_0000, 8), NextHop(999));
        assert_ne!(snap.compressed, onrtc(&snap.table), "test needs a lie");
        let bytes = encode_snapshot(&snap);
        let err = decode_snapshot(&bytes).unwrap_err();
        assert!(err.to_string().contains("integrity"), "{err}");
    }

    #[test]
    fn write_is_atomic_and_loadable() {
        let dir = std::env::temp_dir().join(format!("clue-snap-{}", std::process::id()));
        fs::create_dir_all(&dir).unwrap();
        let snap = sample();
        let path = write_snapshot(&dir, &snap).unwrap();
        assert_eq!(load_snapshot(&path).unwrap(), snap);
        assert!(!fs::read_dir(&dir).unwrap().any(|e| {
            let p = e.unwrap().path();
            p.extension().is_some_and(|x| x == "tmp")
        }));
        fs::remove_dir_all(&dir).unwrap();
    }
}
