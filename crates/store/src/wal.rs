//! The write-ahead journal: segmented, CRC-32-framed, append-only.
//!
//! ## Record layout (all integers big-endian)
//!
//! ```text
//! magic    u32   0x434C_5752 ("CLWR")
//! version  u8    1
//! jseq     u64   journal sequence number (contiguous from 1)
//! epoch    u64   router epoch current when the batch was accepted
//! seq_hw   u64   ingress sequence high-water drained into the batch
//! raw      u32   raw (pre-coalescing) updates the batch absorbs
//! len      u32   payload length in bytes
//! payload  [u8]  clue_core::codec::encode_updates(ops)
//! crc      u32   CRC-32 over every preceding byte of the record
//! ```
//!
//! Header is 37 bytes; the smallest record (empty op list) is 45.
//!
//! ## Segments
//!
//! Records are appended to `wal-<jseq:016x>.clog` files named after
//! their first record's `jseq`. The writer rotates to a fresh segment
//! past [`segment_bytes`](crate::StoreConfig::segment_bytes) and — key
//! for recovery — always opens a *fresh* segment after a restart, so a
//! corrupt tail in one segment never poisons later records: the scan
//! skips the garbage and picks the sequence back up at the next
//! segment boundary.
//!
//! ## Scan-to-last-valid
//!
//! [`scan_dir`] walks segments in `jseq` order, decoding records until
//! one fails its CRC/structure check (torn write, truncation, bit
//! flip), then continues with the next segment if — and only if — it
//! carries the next expected `jseq`. A genuine gap ends the scan: what
//! follows can no longer be replayed consistently.

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

use clue_core::codec::{bad_data, decode_updates, encode_updates, Cursor};
use clue_core::crc::crc32;
use clue_fib::Update;

/// WAL record magic, "CLWR".
pub const WAL_MAGIC: u32 = 0x434C_5752;
/// WAL record format version.
pub const WAL_VERSION: u8 = 1;
/// Fixed bytes before the payload.
pub const RECORD_HEADER_LEN: usize = 4 + 1 + 8 + 8 + 8 + 4 + 4;
/// Payload cap, mirroring the wire protocol's frame cap.
pub const MAX_RECORD_PAYLOAD: u32 = 16 * 1024 * 1024;

/// One decoded journal record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WalRecord {
    /// Journal sequence number (contiguous from 1).
    pub jseq: u64,
    /// Router epoch current when the batch was accepted.
    pub epoch: u64,
    /// Ingress sequence high-water drained into the batch.
    pub seq_hw: u64,
    /// Raw updates the batch absorbs (pre-coalescing).
    pub raw: u32,
    /// The coalesced ops.
    pub ops: Vec<Update>,
}

/// Encodes one record, CRC included.
#[must_use]
pub fn encode_record(rec: &WalRecord) -> Vec<u8> {
    let payload = encode_updates(&rec.ops);
    let mut buf = Vec::with_capacity(RECORD_HEADER_LEN + payload.len() + 4);
    buf.extend_from_slice(&WAL_MAGIC.to_be_bytes());
    buf.push(WAL_VERSION);
    buf.extend_from_slice(&rec.jseq.to_be_bytes());
    buf.extend_from_slice(&rec.epoch.to_be_bytes());
    buf.extend_from_slice(&rec.seq_hw.to_be_bytes());
    buf.extend_from_slice(&rec.raw.to_be_bytes());
    buf.extend_from_slice(&(payload.len() as u32).to_be_bytes());
    buf.extend_from_slice(&payload);
    buf.extend_from_slice(&crc32(&buf).to_be_bytes());
    buf
}

/// Decodes the record at the head of `buf`, returning it and the bytes
/// consumed.
///
/// # Errors
///
/// `InvalidData` on bad magic/version, an oversized length, a CRC
/// mismatch, or a malformed payload; `UnexpectedEof`-flavored
/// `InvalidData` on truncation. Never panics, whatever the bytes.
pub fn decode_record(buf: &[u8]) -> io::Result<(WalRecord, usize)> {
    let mut c = Cursor::new(buf);
    let magic = c.u32()?;
    if magic != WAL_MAGIC {
        return Err(bad_data(format!("bad record magic {magic:#010x}")));
    }
    let version = c.u8()?;
    if version != WAL_VERSION {
        return Err(bad_data(format!("unsupported record version {version}")));
    }
    let jseq = c.u64()?;
    let epoch = c.u64()?;
    let seq_hw = c.u64()?;
    let raw = c.u32()?;
    let len = c.u32()?;
    if len > MAX_RECORD_PAYLOAD {
        return Err(bad_data(format!("record payload of {len} bytes too large")));
    }
    let payload = c.take(len as usize)?;
    let crc_at = c.consumed();
    let crc = c.u32()?;
    if crc != crc32(&buf[..crc_at]) {
        return Err(bad_data(format!("record jseq {jseq}: CRC mismatch")));
    }
    let ops = decode_updates(payload)?;
    Ok((
        WalRecord {
            jseq,
            epoch,
            seq_hw,
            raw,
            ops,
        },
        crc_at + 4,
    ))
}

/// The file name of the segment whose first record is `jseq`.
#[must_use]
pub fn segment_name(jseq: u64) -> String {
    format!("wal-{jseq:016x}.clog")
}

/// Lists a data dir's WAL segments in `jseq` order.
///
/// # Errors
///
/// Propagates directory-read errors.
pub fn list_segments(dir: &Path) -> io::Result<Vec<PathBuf>> {
    let mut segs = Vec::new();
    for entry in fs::read_dir(dir)? {
        let path = entry?.path();
        let name = path.file_name().and_then(|n| n.to_str()).unwrap_or("");
        if name.starts_with("wal-") && name.ends_with(".clog") {
            segs.push(path);
        }
    }
    // The fixed-width hex name makes lexicographic order jseq order.
    segs.sort();
    Ok(segs)
}

/// The outcome of scanning the journal tail after a snapshot.
#[derive(Debug, Default)]
pub struct ScanOutcome {
    /// Valid records with `jseq > after`, contiguous from `after + 1`.
    pub records: Vec<WalRecord>,
    /// Whether the scan hit a corrupt/torn tail or a sequence gap and
    /// stopped short of the physical end of the journal.
    pub truncated: bool,
}

/// Scans every segment for the contiguous run of valid records after
/// `after` (scan-to-last-valid).
///
/// # Errors
///
/// Propagates I/O errors reading the directory or segment files;
/// *corrupt bytes are not errors* — they end the affected segment and
/// set [`ScanOutcome::truncated`].
pub fn scan_dir(dir: &Path, after: u64) -> io::Result<ScanOutcome> {
    let mut out = ScanOutcome::default();
    let mut expected = after + 1;
    for seg in list_segments(dir)? {
        let bytes = fs::read(&seg)?;
        let mut at = 0usize;
        while at < bytes.len() {
            match decode_record(&bytes[at..]) {
                Ok((rec, used)) => {
                    at += used;
                    if rec.jseq < expected {
                        // Pre-snapshot leftovers an unpruned segment
                        // may still hold.
                        continue;
                    }
                    if rec.jseq > expected {
                        // A hole: nothing past it can replay soundly.
                        out.truncated = true;
                        return Ok(out);
                    }
                    out.records.push(rec);
                    expected += 1;
                }
                Err(_) => {
                    // Torn/corrupt tail of this segment. A post-crash
                    // writer opens a fresh segment, so later segments
                    // may continue the sequence; keep scanning them.
                    out.truncated = true;
                    break;
                }
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use clue_fib::{NextHop, Prefix};

    fn rec(jseq: u64) -> WalRecord {
        WalRecord {
            jseq,
            epoch: jseq,
            seq_hw: jseq * 10,
            raw: 3,
            ops: vec![
                Update::Announce {
                    prefix: Prefix::new(0x0A00_0000, 8),
                    next_hop: NextHop(jseq as u16),
                },
                Update::Withdraw {
                    prefix: Prefix::new(0xC0A8_0000, 16),
                },
            ],
        }
    }

    #[test]
    fn records_round_trip() {
        let r = rec(7);
        let bytes = encode_record(&r);
        let (back, used) = decode_record(&bytes).unwrap();
        assert_eq!(back, r);
        assert_eq!(used, bytes.len());

        // Empty op list (a fully-cancelled batch) is a valid record.
        let empty = WalRecord {
            ops: Vec::new(),
            ..rec(8)
        };
        let bytes = encode_record(&empty);
        assert_eq!(bytes.len(), RECORD_HEADER_LEN + 4 + 4);
        assert_eq!(decode_record(&bytes).unwrap().0, empty);
    }

    #[test]
    fn every_truncation_fails_cleanly() {
        let bytes = encode_record(&rec(1));
        for cut in 0..bytes.len() {
            assert!(decode_record(&bytes[..cut]).is_err(), "cut at {cut}");
        }
    }

    #[test]
    fn every_bit_flip_fails_cleanly() {
        let good = encode_record(&rec(1));
        for i in 0..good.len() * 8 {
            let mut bytes = good.clone();
            bytes[i / 8] ^= 1 << (i % 8);
            assert!(decode_record(&bytes).is_err(), "bit {i} flip accepted");
        }
    }

    #[test]
    fn scan_survives_a_corrupt_segment_tail() {
        let dir = std::env::temp_dir().join(format!("clue-wal-scan-{}", std::process::id()));
        fs::create_dir_all(&dir).unwrap();

        // Segment 1: records 1..=2 plus a torn third record.
        let mut seg1 = Vec::new();
        seg1.extend_from_slice(&encode_record(&rec(1)));
        seg1.extend_from_slice(&encode_record(&rec(2)));
        let torn = encode_record(&rec(3));
        seg1.extend_from_slice(&torn[..torn.len() / 2]);
        fs::write(dir.join(segment_name(1)), &seg1).unwrap();

        // Segment 2 (a post-crash fresh segment): records 3..=4.
        let mut seg2 = Vec::new();
        seg2.extend_from_slice(&encode_record(&rec(3)));
        seg2.extend_from_slice(&encode_record(&rec(4)));
        fs::write(dir.join(segment_name(3)), &seg2).unwrap();

        let out = scan_dir(&dir, 0).unwrap();
        assert!(out.truncated);
        assert_eq!(
            out.records.iter().map(|r| r.jseq).collect::<Vec<_>>(),
            vec![1, 2, 3, 4],
        );

        // A scan from a later snapshot skips the covered prefix.
        let out = scan_dir(&dir, 3).unwrap();
        assert_eq!(
            out.records.iter().map(|r| r.jseq).collect::<Vec<_>>(),
            vec![4],
        );

        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn scan_stops_at_a_sequence_gap() {
        let dir = std::env::temp_dir().join(format!("clue-wal-gap-{}", std::process::id()));
        fs::create_dir_all(&dir).unwrap();
        let mut seg = Vec::new();
        seg.extend_from_slice(&encode_record(&rec(1)));
        seg.extend_from_slice(&encode_record(&rec(5))); // hole: 2..=4 lost
        fs::write(dir.join(segment_name(1)), &seg).unwrap();

        let out = scan_dir(&dir, 0).unwrap();
        assert!(out.truncated);
        assert_eq!(out.records.len(), 1);
        assert_eq!(out.records[0].jseq, 1);

        fs::remove_dir_all(&dir).unwrap();
    }
}
