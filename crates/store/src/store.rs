//! The [`Store`]: a data directory holding WAL segments and snapshots,
//! implementing [`UpdateJournal`] so `RouterService` journals straight
//! into it, plus the recovery path that rebuilds router state from the
//! newest valid snapshot and the contiguous journal tail after it.

use std::fs::{self, File, OpenOptions};
use std::io::{self, ErrorKind, Write};
use std::path::{Path, PathBuf};

use clue_compress::onrtc;
use clue_fib::{Route, RouteTable};
use clue_partition::EvenRangePartition;
use clue_router::{CheckpointView, JournalBatch, RecoveredState, UpdateJournal};

use crate::snapshot::{list_snapshots, load_snapshot, write_snapshot, Snapshot};
use crate::wal::{encode_record, list_segments, scan_dir, segment_name, WalRecord};

/// Tunables for a [`Store`].
#[derive(Debug, Clone, Copy)]
pub struct StoreConfig {
    /// Rotate to a fresh WAL segment past this many bytes.
    pub segment_bytes: u64,
    /// Ask for a checkpoint after this many journal appends.
    pub snapshot_every: u64,
    /// `fsync` each append (disable only for benchmarks/tests that
    /// measure the in-memory path).
    pub fsync: bool,
}

impl Default for StoreConfig {
    fn default() -> Self {
        StoreConfig {
            segment_bytes: 4 * 1024 * 1024,
            snapshot_every: 64,
            fsync: true,
        }
    }
}

/// Everything recovery learned from the data dir, plus the replay
/// bookkeeping the conformance oracle asserts on.
#[derive(Debug, Clone)]
pub struct Recovery {
    /// The recovered original table (snapshot + replayed tail).
    pub table: RouteTable,
    /// Safe epoch number to resume from (past any published epoch).
    pub epoch: u64,
    /// Recovered ingress-sequence high-water (what resuming clients
    /// are told was acked).
    pub seq_hw: u64,
    /// Chip count the snapshot was taken with.
    pub chips: u32,
    /// Partition cut points stored in the snapshot.
    pub cuts: Vec<u32>,
    /// Per-chip DRed contents stored in the snapshot.
    pub dreds: Vec<Vec<Route>>,
    /// Journal position the loaded snapshot covers.
    pub snapshot_jseq: u64,
    /// Next journal sequence number the store will write.
    pub next_jseq: u64,
    /// Journal records replayed on top of the snapshot.
    pub replayed: u64,
    /// Raw updates those replayed records absorb.
    pub raw_replayed: u64,
    /// Cumulative raw updates in the recovered state — the exact
    /// prefix of the original update trace this table corresponds to.
    pub raw_applied: u64,
    /// Whether the scan hit a torn/corrupt tail or a sequence gap.
    pub truncated: bool,
    /// Newer snapshots that failed validation and were skipped.
    pub snapshots_skipped: u64,
}

/// A consistent streaming view of a data dir: the newest valid
/// snapshot's raw bytes plus the contiguous journal tail after it.
/// This is the state a replication hub ships to a joining follower.
#[derive(Debug, Clone)]
pub struct StreamBase {
    /// Journal position the snapshot covers (records ≤ `jseq` are
    /// folded in).
    pub jseq: u64,
    /// The snapshot file's raw bytes, CRC and all — followers validate
    /// with [`crate::decode_snapshot`] after reassembly.
    pub snapshot: Vec<u8>,
    /// Journal records after `jseq`, in jseq order.
    pub tail: Vec<WalRecord>,
}

impl Recovery {
    /// The recovered state in the form `RouterService::start_recovered`
    /// consumes.
    #[must_use]
    pub fn into_state(self) -> RecoveredState {
        RecoveredState {
            table: self.table,
            epoch: self.epoch,
            seq_hw: self.seq_hw,
            dreds: self.dreds,
        }
    }
}

struct SegmentWriter {
    file: File,
    written: u64,
}

/// A durable data directory: WAL segments + snapshots.
///
/// One `Store` owns the directory's write side. Open it, boot a
/// `RouterService` from the returned [`Recovery`] (if any), and hand
/// the store in as the service's [`UpdateJournal`].
pub struct Store {
    dir: PathBuf,
    cfg: StoreConfig,
    writer: Option<SegmentWriter>,
    next_jseq: u64,
    snapshot_jseq: u64,
    appends_since_snapshot: u64,
    raw_total: u64,
}

impl Store {
    /// Opens (creating if needed) the data dir and recovers whatever
    /// state it holds.
    ///
    /// Returns `Ok((store, None))` for a fresh directory — the caller
    /// must seed it with [`init_from_table`](Self::init_from_table)
    /// before journaling — and `Ok((store, Some(recovery)))` when a
    /// valid snapshot was found. Recovery loads the newest snapshot
    /// that validates (falling back past corrupt ones), then replays
    /// the contiguous WAL tail after it.
    ///
    /// # Errors
    ///
    /// I/O failures, or `InvalidData` when journal segments exist but
    /// no snapshot validates (the base state is unrecoverable).
    pub fn open(dir: &Path, cfg: StoreConfig) -> io::Result<(Store, Option<Recovery>)> {
        fs::create_dir_all(dir)?;
        let snaps = list_snapshots(dir)?;
        let mut skipped = 0u64;
        let mut snapshot = None;
        for path in &snaps {
            match load_snapshot(path) {
                Ok(s) => {
                    snapshot = Some(s);
                    break;
                }
                Err(_) => skipped += 1,
            }
        }

        let Some(snap) = snapshot else {
            if !list_segments(dir)?.is_empty() || !snaps.is_empty() {
                return Err(io::Error::new(
                    ErrorKind::InvalidData,
                    "data dir has journal segments but no valid snapshot to base them on",
                ));
            }
            let store = Store {
                dir: dir.to_path_buf(),
                cfg,
                writer: None,
                next_jseq: 1,
                snapshot_jseq: 0,
                appends_since_snapshot: 0,
                raw_total: 0,
            };
            return Ok((store, None));
        };

        let scan = scan_dir(dir, snap.jseq)?;
        let mut table = snap.table.clone();
        let mut epoch = snap.epoch;
        let mut seq_hw = snap.seq_hw;
        let mut raw_replayed = 0u64;
        for rec in &scan.records {
            for &op in &rec.ops {
                table.apply(op);
            }
            // rec.epoch is the epoch *before* the batch applied; the
            // batch may have published rec.epoch + 1. Resuming past it
            // keeps epoch numbers monotone across the restart.
            epoch = epoch.max(rec.epoch + 1);
            seq_hw = seq_hw.max(rec.seq_hw);
            raw_replayed += u64::from(rec.raw);
        }
        let replayed = scan.records.len() as u64;
        let next_jseq = snap.jseq + replayed + 1;
        let recovery = Recovery {
            table,
            epoch,
            seq_hw,
            chips: snap.chips,
            cuts: snap.cuts,
            dreds: snap.dreds,
            snapshot_jseq: snap.jseq,
            next_jseq,
            replayed,
            raw_replayed,
            raw_applied: snap.raw_total + raw_replayed,
            truncated: scan.truncated,
            snapshots_skipped: skipped,
        };
        let store = Store {
            dir: dir.to_path_buf(),
            cfg,
            writer: None,
            next_jseq,
            snapshot_jseq: snap.jseq,
            appends_since_snapshot: replayed,
            raw_total: recovery.raw_applied,
        };
        Ok((store, Some(recovery)))
    }

    /// Seeds a fresh data dir with snapshot 0 of `table` (partitioned
    /// for `chips` workers, empty DReds), the base every later journal
    /// record builds on.
    ///
    /// # Errors
    ///
    /// I/O failures, or `InvalidData` if the dir already holds state.
    pub fn init_from_table(&mut self, table: &RouteTable, chips: usize) -> io::Result<()> {
        if self.next_jseq != 1 || self.snapshot_has_been_written()? {
            return Err(io::Error::new(
                ErrorKind::InvalidData,
                "data dir is already initialized",
            ));
        }
        let compressed = onrtc(table);
        let cuts = EvenRangePartition::split(&compressed, chips)
            .index()
            .cuts()
            .to_vec();
        let snap = Snapshot {
            jseq: 0,
            epoch: 0,
            seq_hw: 0,
            raw_total: 0,
            chips: chips as u32,
            cuts,
            table: table.clone(),
            compressed,
            dreds: vec![Vec::new(); chips],
        };
        write_snapshot(&self.dir, &snap)?;
        Ok(())
    }

    fn snapshot_has_been_written(&self) -> io::Result<bool> {
        Ok(!list_snapshots(&self.dir)?.is_empty())
    }

    /// The directory this store owns.
    #[must_use]
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The next journal sequence number to be written.
    #[must_use]
    pub fn next_jseq(&self) -> u64 {
        self.next_jseq
    }

    /// Journal position of the newest valid snapshot.
    #[must_use]
    pub fn snapshot_jseq(&self) -> u64 {
        self.snapshot_jseq
    }

    fn writer(&mut self) -> io::Result<&mut SegmentWriter> {
        let rotate = self
            .writer
            .as_ref()
            .is_some_and(|w| w.written >= self.cfg.segment_bytes);
        if self.writer.is_none() || rotate {
            // Always a *fresh* segment named by the next jseq: after a
            // crash the previous segment's torn tail stays where it is
            // and the scan resumes the sequence at this boundary.
            let path = self.dir.join(segment_name(self.next_jseq));
            let file = OpenOptions::new()
                .write(true)
                .create(true)
                .truncate(true)
                .open(path)?;
            self.writer = Some(SegmentWriter { file, written: 0 });
        }
        Ok(self.writer.as_mut().expect("just ensured"))
    }

    fn write_checkpoint(&mut self, snap: &Snapshot) -> io::Result<()> {
        write_snapshot(&self.dir, snap)?;
        self.snapshot_jseq = snap.jseq;
        self.appends_since_snapshot = 0;
        // Every journaled record is ≤ snap.jseq, so the whole log is
        // superseded: drop the segments and start fresh on next append.
        self.writer = None;
        for seg in list_segments(&self.dir)? {
            fs::remove_file(seg)?;
        }
        Ok(())
    }

    /// Reads the segment-streaming base for replication: the raw bytes
    /// of the snapshot at [`snapshot_jseq`](Self::snapshot_jseq) plus
    /// the decoded journal tail after it. Called between appends (the
    /// store owns the write side, so the view is consistent).
    ///
    /// # Errors
    ///
    /// I/O failures, or `InvalidData` when the current snapshot file
    /// does not validate (a standby must never be seeded from a
    /// corrupt base).
    pub fn stream_base(&self) -> io::Result<StreamBase> {
        let path = self
            .dir
            .join(crate::snapshot::snapshot_name(self.snapshot_jseq));
        let snapshot = fs::read(&path)?;
        crate::snapshot::decode_snapshot(&snapshot)?;
        let scan = scan_dir(&self.dir, self.snapshot_jseq)?;
        Ok(StreamBase {
            jseq: self.snapshot_jseq,
            snapshot,
            tail: scan.records,
        })
    }

    /// Writes a snapshot assembled from a completed [`Recovery`] and
    /// prunes the journal — the offline compaction behind
    /// `clue snapshot`.
    ///
    /// # Errors
    ///
    /// I/O failures writing the snapshot or pruning segments.
    pub fn checkpoint_recovery(&mut self, rec: &Recovery) -> io::Result<()> {
        let compressed = onrtc(&rec.table);
        let cuts = EvenRangePartition::split(&compressed, rec.chips as usize)
            .index()
            .cuts()
            .to_vec();
        let snap = Snapshot {
            jseq: self.next_jseq - 1,
            epoch: rec.epoch,
            seq_hw: rec.seq_hw,
            raw_total: rec.raw_applied,
            chips: rec.chips,
            cuts,
            table: rec.table.clone(),
            compressed,
            dreds: rec.dreds.clone(),
        };
        self.write_checkpoint(&snap)
    }
}

impl UpdateJournal for Store {
    fn append(&mut self, batch: &JournalBatch<'_>) -> io::Result<()> {
        let rec = WalRecord {
            jseq: self.next_jseq,
            epoch: batch.epoch,
            seq_hw: batch.seq_hw,
            raw: batch.raw,
            ops: batch.ops.to_vec(),
        };
        let bytes = encode_record(&rec);
        let fsync = self.cfg.fsync;
        let w = self.writer()?;
        w.file.write_all(&bytes)?;
        if fsync {
            w.file.sync_data()?;
        }
        w.written += bytes.len() as u64;
        self.next_jseq += 1;
        self.appends_since_snapshot += 1;
        self.raw_total += u64::from(batch.raw);
        Ok(())
    }

    fn wants_checkpoint(&self) -> bool {
        self.appends_since_snapshot >= self.cfg.snapshot_every
    }

    fn checkpoint(&mut self, view: &CheckpointView<'_>) -> io::Result<()> {
        let snap = Snapshot {
            jseq: self.next_jseq - 1,
            epoch: view.epoch,
            seq_hw: view.seq_hw,
            raw_total: self.raw_total,
            chips: view.dreds.len() as u32,
            cuts: view.cuts.to_vec(),
            table: view.table.clone(),
            compressed: view.compressed.clone(),
            dreds: view.dreds.to_vec(),
        };
        self.write_checkpoint(&snap)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use clue_fib::{NextHop, Prefix};

    #[test]
    fn fresh_dir_requires_init_before_state_exists() {
        let dir = std::env::temp_dir().join(format!("clue-store-fresh-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        let (mut store, recovery) = Store::open(&dir, StoreConfig::default()).unwrap();
        assert!(recovery.is_none());
        let table: RouteTable = (0..8u32)
            .map(|i| Route::new(Prefix::new(i << 28, 4), NextHop(i as u16)))
            .collect();
        store.init_from_table(&table, 2).unwrap();
        assert!(store.init_from_table(&table, 2).is_err(), "double init");
        drop(store);

        let (_store, recovery) = Store::open(&dir, StoreConfig::default()).unwrap();
        let rec = recovery.expect("initialized dir recovers");
        assert_eq!(rec.table, table);
        assert_eq!(rec.replayed, 0);
        assert_eq!(rec.chips, 2);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn journal_without_a_base_snapshot_is_rejected() {
        let dir = std::env::temp_dir().join(format!("clue-store-nobase-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        fs::write(dir.join(segment_name(1)), b"anything").unwrap();
        assert!(Store::open(&dir, StoreConfig::default()).is_err());
        fs::remove_dir_all(&dir).unwrap();
    }
}
