//! `clue-store` — durability for the CLUE router.
//!
//! A backbone router restarting from nothing must re-download its RIB
//! and recompress it — exactly the multi-second freshness stall the
//! paper's update pipeline exists to avoid. This crate gives the
//! router a warm restart with bounded recovery time:
//!
//! * [`wal`] — a segmented, CRC-32-framed write-ahead journal. The
//!   update plane appends every coalesced batch *before* applying it
//!   ([`clue_router::UpdateJournal`]), so an acknowledged batch is a
//!   durable batch.
//! * [`snapshot`] — epoch-boundary snapshots of the original table,
//!   its ONRTC compression (doubling as a deep integrity check), the
//!   partition map, and per-chip DRed contents, written atomically.
//! * [`Store`] — ties both to a data directory. Recovery loads the
//!   newest snapshot that validates, replays only the contiguous WAL
//!   tail after it with scan-to-last-valid semantics (torn writes,
//!   truncated tails, and bit-flipped records end the tail cleanly,
//!   never panic), and hands back the ingress-sequence high-water so
//!   `clue-net` clients resume across the restart.
//!
//! The WAL payload encoding and checksum are shared with the wire
//! protocol via [`clue_core::codec`] and [`clue_core::crc`].

#![warn(missing_docs)]
#![warn(clippy::all)]

pub mod snapshot;
pub mod store;
pub mod wal;

pub use snapshot::{
    decode_snapshot, encode_snapshot, list_snapshots, load_snapshot, snapshot_name, write_snapshot,
    Snapshot,
};
pub use store::{Recovery, Store, StoreConfig, StreamBase};
pub use wal::{
    decode_record, encode_record, list_segments, scan_dir, segment_name, ScanOutcome, WalRecord,
};
