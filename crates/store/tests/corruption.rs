//! The shared corruption corpus: the same adversarial byte mutations
//! thrown at *both* framed decoders in the workspace — the `clue-net`
//! wire frame and the `clue-store` WAL record — asserting every decoder
//! returns a clean error (or a correct success), never panics.
//!
//! Both decoders sit on the same `clue_core` codec and CRC, so a
//! robustness gap in one would likely exist in the other; running one
//! corpus over both keeps them honest together.

use clue_core::codec::encode_updates;
use clue_fib::{NextHop, Prefix, Update};
use clue_net::frame::FrameDecoder;
use clue_net::{Frame, FrameType};
use clue_store::{decode_record, encode_record, WalRecord};

fn sample_ops() -> Vec<Update> {
    vec![
        Update::Announce {
            prefix: Prefix::new(0x0A00_0000, 8),
            next_hop: NextHop(7),
        },
        Update::Withdraw {
            prefix: Prefix::new(0xC0A8_0000, 16),
        },
        Update::Announce {
            prefix: Prefix::new(0xDEAD_0000, 16),
            next_hop: NextHop(u16::MAX),
        },
    ]
}

/// The corpus: each entry is (label, bytes) derived from a valid
/// encoding of `base` by one corruption family.
fn corpus(base: &[u8]) -> Vec<(String, Vec<u8>)> {
    let mut out = Vec::new();
    // Truncations at every boundary, including the empty buffer.
    for cut in 0..base.len() {
        out.push((format!("truncate@{cut}"), base[..cut].to_vec()));
    }
    // Every single-bit flip.
    for bit in 0..base.len() * 8 {
        let mut b = base.to_vec();
        b[bit / 8] ^= 1 << (bit % 8);
        out.push((format!("bitflip@{bit}"), b));
    }
    // Oversized length fields: stamp huge values over every aligned
    // u32 position (one of them is the real length field).
    for at in (0..base.len().saturating_sub(4)).step_by(4) {
        let mut b = base.to_vec();
        b[at..at + 4].copy_from_slice(&u32::MAX.to_be_bytes());
        out.push((format!("hugelen@{at}"), b));
        let mut b = base.to_vec();
        b[at..at + 4].copy_from_slice(&0x7FFF_FFFFu32.to_be_bytes());
        out.push((format!("biglen@{at}"), b));
    }
    // Trailing garbage after a valid encoding.
    let mut padded = base.to_vec();
    padded.extend_from_slice(&[0xAA; 16]);
    out.push(("trailing-garbage".into(), padded));
    out
}

#[test]
fn wal_decoder_survives_the_corpus() {
    let good = encode_record(&WalRecord {
        jseq: 3,
        epoch: 2,
        seq_hw: 40,
        raw: 5,
        ops: sample_ops(),
    });
    let (rec, used) = decode_record(&good).expect("valid record decodes");
    assert_eq!(used, good.len());
    assert_eq!(rec.ops, sample_ops());

    for (label, bytes) in corpus(&good) {
        // Decoding must either fail cleanly or — for the trailing
        // garbage case — stop exactly at the record boundary.
        if let Ok((rec, used)) = decode_record(&bytes) {
            assert_eq!(used, good.len(), "case {label}");
            assert_eq!(rec.ops, sample_ops(), "case {label}");
        }
    }
}

#[test]
fn wal_decoder_survives_a_corrupted_empty_payload_record() {
    // A zero-length payload (fully-cancelled batch) is the smallest
    // valid record; its mutations probe the header paths specifically.
    let good = encode_record(&WalRecord {
        jseq: 1,
        epoch: 0,
        seq_hw: 1,
        raw: 2,
        ops: Vec::new(),
    });
    assert!(decode_record(&good).is_ok());
    for (label, bytes) in corpus(&good) {
        if let Ok((_, used)) = decode_record(&bytes) {
            assert_eq!(used, good.len(), "case {label}");
        }
    }
}

#[test]
fn frame_decoder_survives_the_corpus() {
    let good = Frame {
        kind: FrameType::Update,
        seq: 9,
        payload: encode_updates(&sample_ops()),
    }
    .encode();
    assert!(Frame::read_from(&mut &good[..]).is_ok());

    for (label, bytes) in corpus(&good) {
        // Same contract: clean error or a byte-identical re-decode.
        if let Ok(frame) = Frame::read_from(&mut &bytes[..]) {
            assert_eq!(frame.encode(), good, "case {label}");
        }
    }
}

#[test]
fn incremental_frame_decoder_survives_the_corpus() {
    // The third framed decoder in the workspace: the nonblocking
    // incremental decoder must uphold the same contract as the
    // blocking reader over the same corpus — clean error or a
    // byte-identical re-decode, fed one byte at a time.
    let good = Frame {
        kind: FrameType::Update,
        seq: 9,
        payload: encode_updates(&sample_ops()),
    }
    .encode();

    for (label, bytes) in corpus(&good) {
        let mut dec = FrameDecoder::new();
        let mut decoded = None;
        let mut failed = false;
        for &b in &bytes {
            dec.extend(&[b]);
            match dec.poll_frame() {
                Ok(Some(f)) => {
                    decoded = Some(f);
                    break;
                }
                Ok(None) => {}
                Err(_) => {
                    failed = true;
                    break;
                }
            }
        }
        if let Some(frame) = decoded {
            assert_eq!(frame.encode(), good, "case {label}");
        } else {
            // Starved or cleanly failed — both acceptable; what is
            // not acceptable is a panic or a wrong frame, and the
            // blocking decoder must agree that this input is bad.
            let blocking = Frame::read_from(&mut &bytes[..]);
            assert!(
                blocking.is_err() || failed,
                "case {label}: incremental starved where blocking decoded"
            );
        }
    }
}

#[test]
fn frame_decoder_survives_a_corrupted_empty_payload_frame() {
    let good = Frame {
        kind: FrameType::Hello,
        seq: 0,
        payload: Vec::new(),
    }
    .encode();
    assert!(Frame::read_from(&mut &good[..]).is_ok());
    for (label, bytes) in corpus(&good) {
        if let Ok(frame) = Frame::read_from(&mut &bytes[..]) {
            assert_eq!(frame.encode(), good, "case {label}");
        }
    }
}
