//! End-to-end recovery: a journaled `RouterService` over a real data
//! dir, restarted cleanly, after a simulated crash, and after tail
//! corruption, each time asserting the recovered table equals the
//! sequential oracle at the exact trace prefix the journal preserved.

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

use clue_fib::gen::FibGen;
use clue_fib::{RouteTable, Update};
use clue_router::{
    CheckpointView, JournalBatch, RouterConfig, RouterService, SubmitOutcome, UpdateJournal,
};
use clue_store::{Store, StoreConfig};
use clue_traffic::UpdateGen;

/// A store whose drain "crashes": every append and checkpoint is real,
/// but the final drain-time checkpoint never happens, leaving the WAL
/// tail on disk exactly as a killed process would.
struct CrashStore(Store);

impl UpdateJournal for CrashStore {
    fn append(&mut self, batch: &JournalBatch<'_>) -> io::Result<()> {
        self.0.append(batch)
    }
    fn wants_checkpoint(&self) -> bool {
        self.0.wants_checkpoint()
    }
    fn checkpoint(&mut self, view: &CheckpointView<'_>) -> io::Result<()> {
        self.0.checkpoint(view)
    }
    fn on_drain(&mut self, _view: &CheckpointView<'_>) -> io::Result<()> {
        Ok(())
    }
}

fn temp_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("clue-recov-{name}-{}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    dir
}

fn workload(seed: u64, routes: usize, updates: usize) -> (RouteTable, Vec<Update>) {
    let fib = FibGen::new(seed).routes(routes).generate();
    let trace = UpdateGen::new(seed + 1).generate(&fib, updates);
    (fib, trace)
}

fn oracle(fib: &RouteTable, trace: &[Update]) -> RouteTable {
    let mut t = fib.clone();
    for &u in trace {
        t.apply(u);
    }
    t
}

/// Runs a journaled service over the whole trace with per-update
/// sequence tags 1..=n; `crash` suppresses the drain checkpoint.
fn run_journaled(dir: &Path, fib: &RouteTable, trace: &[Update], cfg: StoreConfig, crash: bool) {
    let (mut store, recovery) = Store::open(dir, cfg).unwrap();
    assert!(recovery.is_none(), "expected a fresh dir");
    let rcfg = RouterConfig {
        batch_size: 8,
        ..RouterConfig::default()
    };
    store.init_from_table(fib, rcfg.workers).unwrap();
    let journal: Box<dyn UpdateJournal> = if crash {
        Box::new(CrashStore(store))
    } else {
        Box::new(store)
    };
    let svc = RouterService::start_with_journal(fib, &rcfg, journal);
    for (i, &u) in trace.iter().enumerate() {
        assert_eq!(
            svc.submit_update_tagged(u, i as u64 + 1),
            SubmitOutcome::Accepted
        );
    }
    let report = svc.drain();
    assert_eq!(report.final_table, oracle(fib, trace));
    assert!(report.snapshot.journal_appends > 0);
    assert_eq!(report.snapshot.journal_errors, 0);
}

#[test]
fn clean_shutdown_replays_nothing() {
    let dir = temp_dir("clean");
    let (fib, trace) = workload(61, 400, 300);
    run_journaled(&dir, &fib, &trace, StoreConfig::default(), false);

    let (_store, recovery) = Store::open(&dir, StoreConfig::default()).unwrap();
    let rec = recovery.expect("initialized dir recovers");
    assert_eq!(rec.replayed, 0, "drain checkpoint covers the whole journal");
    assert!(!rec.truncated);
    assert_eq!(rec.seq_hw, trace.len() as u64);
    assert_eq!(rec.raw_applied, trace.len() as u64);
    assert_eq!(rec.table, oracle(&fib, &trace));
    fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn crash_replays_only_the_post_snapshot_tail() {
    let dir = temp_dir("crash");
    let (fib, trace) = workload(71, 400, 300);
    let cfg = StoreConfig {
        snapshot_every: 8,
        fsync: false,
        ..StoreConfig::default()
    };
    run_journaled(&dir, &fib, &trace, cfg, true);

    let (_store, recovery) = Store::open(&dir, cfg).unwrap();
    let rec = recovery.expect("crashed dir recovers");
    assert!(!rec.truncated, "every record was fully written");
    assert!(
        rec.replayed <= cfg.snapshot_every,
        "replay ({}) must be bounded by the post-snapshot tail",
        rec.replayed,
    );
    // Every batch was journaled before the crash point (drain applied
    // them all), so recovery reaches the full oracle.
    assert_eq!(rec.seq_hw, trace.len() as u64);
    assert_eq!(rec.raw_applied, trace.len() as u64);
    assert_eq!(rec.table, oracle(&fib, &trace));
    fs::remove_dir_all(&dir).unwrap();
}

fn newest_segment(dir: &Path) -> PathBuf {
    let mut segs: Vec<PathBuf> = fs::read_dir(dir)
        .unwrap()
        .map(|e| e.unwrap().path())
        .filter(|p| {
            p.file_name()
                .and_then(|n| n.to_str())
                .is_some_and(|n| n.starts_with("wal-") && n.ends_with(".clog"))
        })
        .collect();
    segs.sort();
    segs.pop().expect("crash run leaves a WAL tail")
}

#[test]
fn torn_tail_is_skipped_and_recovery_lands_on_a_trace_prefix() {
    let dir = temp_dir("torn");
    let (fib, trace) = workload(81, 400, 300);
    // No mid-run checkpoints: the whole journal is the tail.
    let cfg = StoreConfig {
        snapshot_every: 100_000,
        fsync: false,
        ..StoreConfig::default()
    };
    run_journaled(&dir, &fib, &trace, cfg, true);

    // Tear the final record, as a crash mid-write would.
    let seg = newest_segment(&dir);
    let bytes = fs::read(&seg).unwrap();
    fs::write(&seg, &bytes[..bytes.len() - 7]).unwrap();

    let (_store, recovery) = Store::open(&dir, cfg).unwrap();
    let rec = recovery.expect("torn dir still recovers");
    assert!(rec.truncated, "the torn record must be detected");
    assert!(rec.raw_applied < trace.len() as u64);
    // Scan-to-last-valid leaves state equal to the sequential oracle
    // at exactly the raw_applied trace prefix.
    assert_eq!(
        rec.table,
        oracle(&fib, &trace[..rec.raw_applied as usize]),
        "recovered table must be a trace prefix",
    );
    fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn bit_flipped_tail_record_is_skipped_without_panic() {
    let dir = temp_dir("flip");
    let (fib, trace) = workload(91, 400, 300);
    let cfg = StoreConfig {
        snapshot_every: 100_000,
        fsync: false,
        ..StoreConfig::default()
    };
    run_journaled(&dir, &fib, &trace, cfg, true);

    let seg = newest_segment(&dir);
    let mut bytes = fs::read(&seg).unwrap();
    let at = bytes.len() - 11;
    bytes[at] ^= 0x10;
    fs::write(&seg, &bytes).unwrap();

    let (_store, recovery) = Store::open(&dir, cfg).unwrap();
    let rec = recovery.expect("flipped dir still recovers");
    assert!(rec.truncated);
    assert_eq!(rec.table, oracle(&fib, &trace[..rec.raw_applied as usize]),);
    fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn recovered_service_continues_to_the_full_oracle() {
    let dir = temp_dir("continue");
    let (fib, trace) = workload(101, 400, 300);
    let cfg = StoreConfig {
        snapshot_every: 16,
        fsync: false,
        ..StoreConfig::default()
    };
    // First life: crash partway through the trace (journal the first
    // 200 updates, then die without the drain checkpoint).
    {
        let (mut store, recovery) = Store::open(&dir, cfg).unwrap();
        assert!(recovery.is_none());
        let rcfg = RouterConfig {
            batch_size: 8,
            ..RouterConfig::default()
        };
        store.init_from_table(&fib, rcfg.workers).unwrap();
        let svc = RouterService::start_with_journal(&fib, &rcfg, Box::new(CrashStore(store)));
        for (i, &u) in trace[..200].iter().enumerate() {
            svc.submit_update_tagged(u, i as u64 + 1);
        }
        let _ = svc.drain();
    }

    // Second life: recover, resume the trace from where the journal
    // says the first life got to, drain cleanly.
    {
        let (store, recovery) = Store::open(&dir, cfg).unwrap();
        let rec = recovery.expect("crashed dir recovers");
        assert_eq!(rec.raw_applied, 200);
        assert_eq!(rec.seq_hw, 200);
        let rcfg = RouterConfig {
            batch_size: 8,
            ..RouterConfig::default()
        };
        let resume_at = rec.raw_applied as usize;
        let seq0 = rec.seq_hw;
        let svc = RouterService::start_recovered(&rec.into_state(), &rcfg, Some(Box::new(store)));
        for (i, &u) in trace[resume_at..].iter().enumerate() {
            svc.submit_update_tagged(u, seq0 + i as u64 + 1);
        }
        let report = svc.drain();
        assert_eq!(report.final_table, oracle(&fib, &trace));
    }

    // Third life: a clean reopen sees the full trace, zero replay.
    let (_store, recovery) = Store::open(&dir, cfg).unwrap();
    let rec = recovery.expect("recovers");
    assert_eq!(rec.replayed, 0);
    assert_eq!(rec.raw_applied, trace.len() as u64);
    assert_eq!(rec.seq_hw, trace.len() as u64);
    assert_eq!(rec.table, oracle(&fib, &trace));
    fs::remove_dir_all(&dir).unwrap();
}
