//! The single-threaded reactor: poller + connection slab + timers +
//! injector, with all protocol logic delegated to a [`Driver`].

use std::collections::BTreeMap;
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::os::fd::AsRawFd;
use std::sync::mpsc::{Receiver, Sender};
use std::sync::Arc;
use std::time::{Duration, Instant};

use polling::{Backend, Event, Interest, Poller, Token, Waker};

/// Reserved token for the waker pipe.
const TOKEN_WAKER: usize = 0;
/// Listener tokens live in `[TOKEN_LISTENER_BASE, TOKEN_CONN_BASE)`.
const TOKEN_LISTENER_BASE: usize = 1;
/// Connection tokens are `TOKEN_CONN_BASE + slot`.
const TOKEN_CONN_BASE: usize = 1024;

/// Stable identifier for one connection: slot index plus a generation
/// stamp, so an id held across a close can never touch the slot's next
/// tenant.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ConnId(u64);

impl ConnId {
    fn new(slot: usize, gen: u32) -> ConnId {
        ConnId((u64::from(gen) << 32) | slot as u64)
    }

    fn slot(self) -> usize {
        (self.0 & 0xFFFF_FFFF) as usize
    }

    fn gen(self) -> u32 {
        (self.0 >> 32) as u32
    }

    /// The raw 64-bit value (for logs/stats keys).
    #[must_use]
    pub fn raw(self) -> u64 {
        self.0
    }
}

/// Why a connection left the loop.
#[derive(Debug)]
pub enum CloseReason {
    /// Peer closed cleanly (EOF at a read).
    Eof,
    /// Socket-level failure (read or write).
    Err(io::Error),
    /// The driver asked for the close ([`Ctl::close`]); fired once the
    /// outbound buffer flushed (or flushing failed).
    Local,
}

/// Cancellable handle for one pending timer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TimerId {
    at: Instant,
    seq: u64,
}

/// Loop tuning knobs.
#[derive(Debug, Clone)]
pub struct LoopConfig {
    /// Poller backend; `Auto` honors the `CLUE_AIO_BACKEND` override
    /// (`epoll` / `poll`) before resolving platform-best.
    pub backend: Backend,
    /// Pause reads on a connection whose outbound buffer exceeds this.
    pub high_watermark: usize,
    /// Resume reads once the outbound buffer drains below this.
    pub low_watermark: usize,
    /// Bytes per `read(2)` call.
    pub read_chunk: usize,
    /// Max `read(2)` calls per readiness report (fairness bound; a
    /// still-readable socket re-fires on the next poll).
    pub read_budget: usize,
    /// First accept-error backoff pause (doubles per consecutive
    /// error).
    pub accept_backoff_base: Duration,
    /// Accept-error backoff ceiling.
    pub accept_backoff_cap: Duration,
}

impl Default for LoopConfig {
    fn default() -> Self {
        LoopConfig {
            backend: Backend::Auto,
            high_watermark: 256 << 10,
            low_watermark: 64 << 10,
            read_chunk: 16 << 10,
            read_budget: 4,
            accept_backoff_base: Duration::from_millis(5),
            accept_backoff_cap: Duration::from_secs(1),
        }
    }
}

/// What the loop does for the driver: everything that touches sockets,
/// buffers, timers, or the loop lifecycle.
///
/// All mutations are applied immediately except connection closes,
/// which defer until the outbound buffer flushes (and always report
/// through [`Driver::on_close`]).
pub struct Ctl<'a, M> {
    core: &'a mut Core,
    handle_tx: &'a Sender<M>,
    waker: &'a Arc<Waker>,
}

impl<M> Ctl<'_, M> {
    /// Queues `bytes` on `conn`'s outbound buffer (writing directly to
    /// the socket when it is idle) and returns false if the connection
    /// is unknown or already closing.
    pub fn send(&mut self, conn: ConnId, bytes: &[u8]) -> bool {
        self.core.send(conn, bytes)
    }

    /// Drops read interest: the peer's bytes stay in the kernel buffer
    /// and its TCP window closes. Buffered-but-undelivered inbound
    /// bytes are re-delivered on [`resume`](Self::resume).
    pub fn pause(&mut self, conn: ConnId) {
        self.core.set_paused(conn, true);
    }

    /// Restores read interest; any bytes already buffered are
    /// re-delivered to [`Driver::on_data`] before new socket reads.
    pub fn resume(&mut self, conn: ConnId) {
        self.core.set_paused(conn, false);
    }

    /// Closes `conn` after its outbound buffer flushes;
    /// [`Driver::on_close`] fires with [`CloseReason::Local`].
    pub fn close(&mut self, conn: ConnId) {
        self.core.request_close(conn);
    }

    /// Registers an already-connected outbound stream (e.g. from a
    /// dialer thread) with the loop.
    ///
    /// # Errors
    ///
    /// Fails if the socket cannot be made nonblocking or registered.
    pub fn adopt(&mut self, stream: TcpStream) -> io::Result<ConnId> {
        self.core.adopt(stream)
    }

    /// Arms a one-shot timer `after` from now; [`Driver::on_timer`]
    /// fires with `tag`.
    pub fn set_timer(&mut self, after: Duration, tag: u64) -> TimerId {
        self.core
            .set_timer(Instant::now() + after, TimerKind::Driver(tag))
    }

    /// Cancels a pending timer (no-op if it already fired).
    pub fn cancel_timer(&mut self, id: TimerId) {
        self.core.timers.remove(&(id.at, id.seq));
    }

    /// Stops accepting new connections (existing ones keep running);
    /// the drain path calls this first.
    pub fn stop_listening(&mut self) {
        self.core.stop_listening();
    }

    /// Exits the loop after the current dispatch cycle. Connections
    /// still open are dropped without callbacks — drivers wanting a
    /// graceful drain close every connection first and call this from
    /// the last [`Driver::on_close`].
    pub fn stop(&mut self) {
        self.core.stop = true;
    }

    /// Is `conn` still registered (and not closing)?
    #[must_use]
    pub fn is_open(&self, conn: ConnId) -> bool {
        self.core.conn(conn).is_some_and(|c| !c.closing)
    }

    /// Open connections (including ones mid-close).
    #[must_use]
    pub fn conn_count(&self) -> usize {
        self.core.live
    }

    /// The peer address recorded at accept/adopt.
    #[must_use]
    pub fn peer(&self, conn: ConnId) -> Option<SocketAddr> {
        self.core.conn(conn).map(|c| c.peer)
    }

    /// Bytes currently queued outbound on `conn`.
    #[must_use]
    pub fn pending_out(&self, conn: ConnId) -> usize {
        self.core
            .conn(conn)
            .map_or(0, |c| c.write_buf.len() - c.write_pos)
    }

    /// Accept errors (EMFILE and friends) absorbed by backoff so far.
    #[must_use]
    pub fn accept_errors(&self) -> u64 {
        self.core.accept_errors
    }

    /// A cross-thread handle to this loop.
    #[must_use]
    pub fn handle(&self) -> LoopHandle<M>
    where
        M: Send,
    {
        LoopHandle {
            tx: self.handle_tx.clone(),
            waker: Arc::clone(self.waker),
        }
    }
}

/// Protocol logic the loop calls into. All callbacks run on the loop
/// thread; they must not block (hand blocking work to bridge threads
/// and return results via [`LoopHandle::send`]).
pub trait Driver: Sized {
    /// Messages other threads inject via [`LoopHandle::send`].
    type Msg: Send + 'static;

    /// A listener accepted `conn` from `peer`.
    fn on_accept(&mut self, ctl: &mut Ctl<'_, Self::Msg>, conn: ConnId, peer: SocketAddr) {
        let _ = (ctl, conn, peer);
    }

    /// `accept()` failed with a non-`WouldBlock` error; the listener
    /// is pausing under capped backoff.
    fn on_accept_error(&mut self, ctl: &mut Ctl<'_, Self::Msg>, err: &io::Error) {
        let _ = (ctl, err);
    }

    /// Inbound bytes for `conn`: everything read so far and not yet
    /// consumed. Drain what you can parse; leftovers are re-delivered
    /// with the next readiness (or on resume).
    fn on_data(&mut self, ctl: &mut Ctl<'_, Self::Msg>, conn: ConnId, buf: &mut Vec<u8>);

    /// `conn` left the loop. Fires exactly once per connection, for
    /// peer-initiated and driver-initiated closes alike.
    fn on_close(&mut self, ctl: &mut Ctl<'_, Self::Msg>, conn: ConnId, reason: &CloseReason);

    /// A message arrived from a [`LoopHandle`].
    fn on_msg(&mut self, ctl: &mut Ctl<'_, Self::Msg>, msg: Self::Msg) {
        let _ = (ctl, msg);
    }

    /// A timer armed with [`Ctl::set_timer`] expired.
    fn on_timer(&mut self, ctl: &mut Ctl<'_, Self::Msg>, tag: u64) {
        let _ = (ctl, tag);
    }
}

/// Clonable cross-thread handle: inject messages and wake the loop.
pub struct LoopHandle<M> {
    tx: Sender<M>,
    waker: Arc<Waker>,
}

impl<M> Clone for LoopHandle<M> {
    fn clone(&self) -> Self {
        LoopHandle {
            tx: self.tx.clone(),
            waker: Arc::clone(&self.waker),
        }
    }
}

impl<M: Send> LoopHandle<M> {
    /// Injects `msg`; the loop wakes (if blocked) and dispatches it to
    /// [`Driver::on_msg`]. Returns false once the loop has exited.
    pub fn send(&self, msg: M) -> bool {
        if self.tx.send(msg).is_err() {
            return false;
        }
        let _ = self.waker.wake();
        true
    }
}

enum TimerKind {
    Driver(u64),
    /// Re-arm listener `idx` after accept backoff.
    Listener(usize),
}

struct Conn {
    stream: TcpStream,
    peer: SocketAddr,
    gen: u32,
    read_buf: Vec<u8>,
    write_buf: Vec<u8>,
    write_pos: usize,
    /// Interest currently registered with the poller.
    registered: Interest,
    /// Driver asked for a read pause.
    paused: bool,
    /// Write buffer crossed the high watermark.
    throttled: bool,
    /// Close requested; flush then drop.
    closing: bool,
}

impl Conn {
    fn pending_out(&self) -> usize {
        self.write_buf.len() - self.write_pos
    }

    fn desired_interest(&self) -> Interest {
        let mut want = Interest::NONE;
        if !self.paused && !self.throttled && !self.closing {
            want = want.with(Interest::READABLE);
        }
        if self.pending_out() > 0 {
            want = want.with(Interest::WRITABLE);
        }
        want
    }
}

struct ListenerSlot {
    listener: TcpListener,
    /// In the poller's interest set right now (false during backoff or
    /// after `stop_listening`).
    armed: bool,
    backoff: Duration,
    stopped: bool,
}

/// Everything the loop mutates; split from the driver so `Ctl` can
/// borrow it while the driver is borrowed for a callback.
struct Core {
    poller: Poller,
    cfg: LoopConfig,
    listeners: Vec<ListenerSlot>,
    conns: Vec<Option<Conn>>,
    /// Next generation stamp per slot (survives the tenant).
    gens: Vec<u32>,
    free: Vec<usize>,
    live: usize,
    timers: BTreeMap<(Instant, u64), TimerKind>,
    timer_seq: u64,
    /// Slots whose close finished and whose `on_close` is pending.
    done_closes: Vec<(ConnId, CloseReason)>,
    /// Conns whose buffered inbound bytes need re-delivery (resume).
    replay: Vec<ConnId>,
    accept_errors: u64,
    stop: bool,
    scratch: Vec<u8>,
}

impl Core {
    fn conn(&self, id: ConnId) -> Option<&Conn> {
        match self.conns.get(id.slot()) {
            Some(Some(c)) if c.gen == id.gen() => Some(c),
            _ => None,
        }
    }

    fn conn_mut(&mut self, id: ConnId) -> Option<&mut Conn> {
        match self.conns.get_mut(id.slot()) {
            Some(Some(c)) if c.gen == id.gen() => Some(c),
            _ => None,
        }
    }

    fn set_timer(&mut self, at: Instant, kind: TimerKind) -> TimerId {
        self.timer_seq += 1;
        let seq = self.timer_seq;
        self.timers.insert((at, seq), kind);
        TimerId { at, seq }
    }

    fn register_conn(&mut self, stream: TcpStream, peer: SocketAddr) -> io::Result<ConnId> {
        stream.set_nonblocking(true)?;
        let _ = stream.set_nodelay(true);
        let slot = match self.free.pop() {
            Some(s) => s,
            None => {
                self.conns.push(None);
                self.gens.push(0);
                self.conns.len() - 1
            }
        };
        let gen = self.gens[slot];
        let conn = Conn {
            stream,
            peer,
            gen,
            read_buf: Vec::new(),
            write_buf: Vec::new(),
            write_pos: 0,
            registered: Interest::READABLE,
            paused: false,
            throttled: false,
            closing: false,
        };
        if let Err(e) = self.poller.register(
            conn.stream.as_raw_fd(),
            Token(TOKEN_CONN_BASE + slot),
            Interest::READABLE,
        ) {
            self.free.push(slot);
            return Err(e);
        }
        self.conns[slot] = Some(conn);
        self.live += 1;
        Ok(ConnId::new(slot, gen))
    }

    fn adopt(&mut self, stream: TcpStream) -> io::Result<ConnId> {
        let peer = stream.peer_addr()?;
        self.register_conn(stream, peer)
    }

    /// Applies the conn's desired interest to the poller if it drifted.
    fn sync_interest(&mut self, id: ConnId) {
        let Some(c) = self.conn(id) else { return };
        let want = c.desired_interest();
        if want == c.registered {
            return;
        }
        let fd = c.stream.as_raw_fd();
        let token = Token(TOKEN_CONN_BASE + id.slot());
        if self.poller.reregister(fd, token, want).is_ok() {
            if let Some(c) = self.conn_mut(id) {
                c.registered = want;
            }
        }
    }

    fn set_paused(&mut self, id: ConnId, paused: bool) {
        let Some(c) = self.conn_mut(id) else { return };
        if c.paused == paused {
            return;
        }
        c.paused = paused;
        let has_buffered = !c.read_buf.is_empty();
        self.sync_interest(id);
        if !paused && has_buffered {
            self.replay.push(id);
        }
    }

    fn send(&mut self, id: ConnId, bytes: &[u8]) -> bool {
        let high = self.cfg.high_watermark;
        let Some(c) = self.conn_mut(id) else {
            return false;
        };
        if c.closing {
            return false;
        }
        // Fast path: idle socket, try a direct write and buffer only
        // the remainder.
        let mut offset = 0;
        if c.pending_out() == 0 {
            loop {
                match c.stream.write(&bytes[offset..]) {
                    Ok(n) => {
                        offset += n;
                        if offset == bytes.len() {
                            return true;
                        }
                    }
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                    Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                    Err(_) => {
                        // Surface the failure through the read path /
                        // flush path; buffer the rest so close
                        // accounting stays uniform.
                        break;
                    }
                }
            }
        }
        c.write_buf.extend_from_slice(&bytes[offset..]);
        if c.pending_out() > high && !c.throttled {
            c.throttled = true;
        }
        self.sync_interest(id);
        true
    }

    fn request_close(&mut self, id: ConnId) {
        let Some(c) = self.conn_mut(id) else { return };
        if c.closing {
            return;
        }
        c.closing = true;
        if c.pending_out() == 0 {
            self.finish_close(id, CloseReason::Local);
        } else {
            self.sync_interest(id);
        }
    }

    /// Tears the slot down and queues the driver notification.
    fn finish_close(&mut self, id: ConnId, reason: CloseReason) {
        let slot = id.slot();
        let Some(c) = self.conn(id) else { return };
        let fd = c.stream.as_raw_fd();
        let _ = self.poller.deregister(fd);
        self.conns[slot] = None;
        self.gens[slot] = self.gens[slot].wrapping_add(1);
        self.free.push(slot);
        self.live -= 1;
        self.done_closes.push((id, reason));
    }

    /// Drains the outbound buffer as far as the socket allows.
    fn flush(&mut self, id: ConnId) {
        let low = self.cfg.low_watermark;
        let Some(c) = self.conn_mut(id) else { return };
        while c.write_pos < c.write_buf.len() {
            match c.stream.write(&c.write_buf[c.write_pos..]) {
                Ok(0) => break,
                Ok(n) => c.write_pos += n,
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(e) => {
                    self.finish_close(id, CloseReason::Err(e));
                    return;
                }
            }
        }
        if c.write_pos == c.write_buf.len() {
            c.write_buf.clear();
            c.write_pos = 0;
        } else if c.write_pos > (64 << 10) && c.write_pos * 2 >= c.write_buf.len() {
            c.write_buf.drain(..c.write_pos);
            c.write_pos = 0;
        }
        let drained = c.pending_out() <= low;
        let was_throttled = c.throttled;
        let empty = c.pending_out() == 0;
        let closing = c.closing;
        let has_buffered = !c.read_buf.is_empty();
        if was_throttled && drained {
            c.throttled = false;
        }
        if empty && closing {
            self.finish_close(id, CloseReason::Local);
            return;
        }
        self.sync_interest(id);
        if was_throttled && drained && has_buffered {
            self.replay.push(id);
        }
    }

    fn stop_listening(&mut self) {
        for i in 0..self.listeners.len() {
            let fd = self.listeners[i].listener.as_raw_fd();
            if self.listeners[i].armed {
                let _ = self.poller.deregister(fd);
                self.listeners[i].armed = false;
            }
            self.listeners[i].stopped = true;
        }
    }

    fn rearm_listener(&mut self, idx: usize) {
        let slot = &mut self.listeners[idx];
        if slot.armed || slot.stopped {
            return;
        }
        let fd = slot.listener.as_raw_fd();
        if self
            .poller
            .register(fd, Token(TOKEN_LISTENER_BASE + idx), Interest::READABLE)
            .is_ok()
        {
            slot.armed = true;
        }
    }
}

/// The event loop: construct, add listeners, then [`run`](Self::run).
pub struct EventLoop<D: Driver> {
    core: Core,
    driver: D,
    tx: Sender<D::Msg>,
    rx: Receiver<D::Msg>,
    waker: Arc<Waker>,
}

impl<D: Driver> EventLoop<D> {
    /// Builds a loop around `driver`.
    ///
    /// # Errors
    ///
    /// Fails if the poller or waker cannot be created.
    pub fn new(driver: D, cfg: LoopConfig) -> io::Result<EventLoop<D>> {
        let mut backend = cfg.backend;
        if backend == Backend::Auto {
            if let Ok(name) = std::env::var("CLUE_AIO_BACKEND") {
                if let Some(b) = Backend::from_name(&name) {
                    backend = b;
                }
            }
        }
        let mut poller = Poller::with_backend(backend)?;
        let waker = Arc::new(Waker::new()?);
        waker.register(&mut poller, Token(TOKEN_WAKER))?;
        let (tx, rx) = std::sync::mpsc::channel();
        let scratch = vec![0u8; cfg.read_chunk.max(1)];
        Ok(EventLoop {
            core: Core {
                poller,
                cfg,
                listeners: Vec::new(),
                conns: Vec::new(),
                gens: Vec::new(),
                free: Vec::new(),
                live: 0,
                timers: BTreeMap::new(),
                timer_seq: 0,
                done_closes: Vec::new(),
                replay: Vec::new(),
                accept_errors: 0,
                stop: false,
                scratch,
            },
            driver,
            tx,
            rx,
            waker,
        })
    }

    /// Adds a bound listener; incoming connections surface via
    /// [`Driver::on_accept`].
    ///
    /// # Errors
    ///
    /// Fails if the listener cannot be made nonblocking or registered.
    pub fn add_listener(&mut self, listener: TcpListener) -> io::Result<()> {
        listener.set_nonblocking(true)?;
        let idx = self.core.listeners.len();
        self.core.poller.register(
            listener.as_raw_fd(),
            Token(TOKEN_LISTENER_BASE + idx),
            Interest::READABLE,
        )?;
        self.core.listeners.push(ListenerSlot {
            listener,
            armed: true,
            backoff: Duration::ZERO,
            stopped: false,
        });
        Ok(())
    }

    /// A cross-thread handle (clone freely).
    #[must_use]
    pub fn handle(&self) -> LoopHandle<D::Msg> {
        LoopHandle {
            tx: self.tx.clone(),
            waker: Arc::clone(&self.waker),
        }
    }

    /// Arms a driver timer before the loop starts — the seam a driver
    /// uses to schedule its first periodic tick (heartbeat sweep,
    /// shutdown poll) when no [`Ctl`] exists yet. Identical to
    /// [`Ctl::set_timer`].
    pub fn set_timer(&mut self, after: Duration, tag: u64) -> TimerId {
        self.core
            .set_timer(Instant::now() + after, TimerKind::Driver(tag))
    }

    /// Runs until a driver calls [`Ctl::stop`]; returns the driver for
    /// final-state extraction.
    ///
    /// # Errors
    ///
    /// Fails on unrecoverable poller errors.
    pub fn run(self) -> io::Result<D> {
        let EventLoop {
            mut core,
            mut driver,
            tx,
            rx,
            waker,
        } = self;
        let mut events: Vec<Event> = Vec::new();
        while !core.stop {
            let timeout = core
                .timers
                .keys()
                .next()
                .map(|(at, _)| at.saturating_duration_since(Instant::now()));
            core.poller.wait(&mut events, timeout)?;

            for &ev in &events {
                if core.stop {
                    break;
                }
                let t = ev.token.0;
                if t == TOKEN_WAKER {
                    waker.drain();
                } else if t >= TOKEN_CONN_BASE {
                    let slot = t - TOKEN_CONN_BASE;
                    let Some(id) = core
                        .conns
                        .get(slot)
                        .and_then(|c| c.as_ref().map(|c| ConnId::new(slot, c.gen)))
                    else {
                        continue;
                    };
                    if ev.writable {
                        core.flush(id);
                    }
                    if ev.wants_read() {
                        handle_readable(&mut core, &mut driver, &tx, &waker, id);
                    }
                } else {
                    let idx = t - TOKEN_LISTENER_BASE;
                    handle_accept(&mut core, &mut driver, &tx, &waker, idx);
                }
                service_deferred(&mut core, &mut driver, &tx, &waker);
            }

            // Injected messages (drained every cycle: a message can
            // race the waker byte).
            while let Ok(msg) = rx.try_recv() {
                let mut ctl = Ctl {
                    core: &mut core,
                    handle_tx: &tx,
                    waker: &waker,
                };
                driver.on_msg(&mut ctl, msg);
                service_deferred(&mut core, &mut driver, &tx, &waker);
            }

            // Expired timers.
            let now = Instant::now();
            while let Some((&(at, seq), _)) = core.timers.iter().next() {
                if at > now {
                    break;
                }
                let kind = core.timers.remove(&(at, seq)).unwrap();
                match kind {
                    TimerKind::Driver(tag) => {
                        let mut ctl = Ctl {
                            core: &mut core,
                            handle_tx: &tx,
                            waker: &waker,
                        };
                        driver.on_timer(&mut ctl, tag);
                    }
                    TimerKind::Listener(idx) => core.rearm_listener(idx),
                }
                service_deferred(&mut core, &mut driver, &tx, &waker);
            }
        }
        Ok(driver)
    }
}

/// Delivers deferred close notifications and buffered-data replays
/// (kept out of the dispatch paths so driver callbacks never nest).
fn service_deferred<D: Driver>(
    core: &mut Core,
    driver: &mut D,
    tx: &Sender<D::Msg>,
    waker: &Arc<Waker>,
) {
    loop {
        while let Some((id, reason)) = core.done_closes.pop() {
            let mut ctl = Ctl {
                core,
                handle_tx: tx,
                waker,
            };
            driver.on_close(&mut ctl, id, &reason);
        }
        let Some(id) = core.replay.pop() else { break };
        let Some(c) = core.conn_mut(id) else { continue };
        if c.paused || c.throttled || c.read_buf.is_empty() {
            continue;
        }
        let mut buf = std::mem::take(&mut c.read_buf);
        let mut ctl = Ctl {
            core,
            handle_tx: tx,
            waker,
        };
        driver.on_data(&mut ctl, id, &mut buf);
        if let Some(c) = core.conn_mut(id) {
            // Anything the driver left plus whatever arrived during
            // the callback (nothing can: single thread) goes back.
            c.read_buf = buf;
        }
    }
}

fn handle_readable<D: Driver>(
    core: &mut Core,
    driver: &mut D,
    tx: &Sender<D::Msg>,
    waker: &Arc<Waker>,
    id: ConnId,
) {
    let budget = core.cfg.read_budget.max(1);
    let mut scratch = std::mem::take(&mut core.scratch);
    let mut eof = false;
    let mut fatal: Option<io::Error> = None;
    let mut got_any = false;
    {
        let Some(c) = core.conn_mut(id) else {
            core.scratch = scratch;
            return;
        };
        if c.paused || c.throttled || c.closing {
            // Stale readiness from before an interest change.
            core.scratch = scratch;
            return;
        }
        for _ in 0..budget {
            match c.stream.read(&mut scratch) {
                Ok(0) => {
                    eof = true;
                    break;
                }
                Ok(n) => {
                    c.read_buf.extend_from_slice(&scratch[..n]);
                    got_any = true;
                    if n < scratch.len() {
                        break;
                    }
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(e) => {
                    fatal = Some(e);
                    break;
                }
            }
        }
    }
    core.scratch = scratch;

    if got_any {
        if let Some(c) = core.conn_mut(id) {
            let mut buf = std::mem::take(&mut c.read_buf);
            let mut ctl = Ctl {
                core,
                handle_tx: tx,
                waker,
            };
            driver.on_data(&mut ctl, id, &mut buf);
            if let Some(c) = core.conn_mut(id) {
                c.read_buf = buf;
            }
        }
    }
    if let Some(e) = fatal {
        core.finish_close(id, CloseReason::Err(e));
    } else if eof {
        // The driver saw everything buffered above; a clean EOF with
        // leftover bytes is a truncated frame — the driver decides.
        core.finish_close(id, CloseReason::Eof);
    }
}

fn handle_accept<D: Driver>(
    core: &mut Core,
    driver: &mut D,
    tx: &Sender<D::Msg>,
    waker: &Arc<Waker>,
    idx: usize,
) {
    loop {
        if idx >= core.listeners.len() || core.listeners[idx].stopped {
            return;
        }
        let accepted = core.listeners[idx].listener.accept();
        match accepted {
            Ok((stream, peer)) => {
                core.listeners[idx].backoff = Duration::ZERO;
                match core.register_conn(stream, peer) {
                    Ok(id) => {
                        let mut ctl = Ctl {
                            core,
                            handle_tx: tx,
                            waker,
                        };
                        driver.on_accept(&mut ctl, id, peer);
                    }
                    Err(e) => {
                        // Registration failure (fd pressure at the
                        // poller): treat like an accept error.
                        core.accept_errors += 1;
                        let mut ctl = Ctl {
                            core,
                            handle_tx: tx,
                            waker,
                        };
                        driver.on_accept_error(&mut ctl, &e);
                    }
                }
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => return,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => {
                // EMFILE/ENFILE/ECONNABORTED and friends: count it,
                // tell the driver, and take the listener out of the
                // interest set for a capped, growing pause instead of
                // spinning on an error that will repeat immediately.
                core.accept_errors += 1;
                let slot = &mut core.listeners[idx];
                slot.backoff = if slot.backoff.is_zero() {
                    core.cfg.accept_backoff_base
                } else {
                    (slot.backoff * 2).min(core.cfg.accept_backoff_cap)
                };
                let pause = slot.backoff;
                if slot.armed {
                    let fd = slot.listener.as_raw_fd();
                    let _ = core.poller.deregister(fd);
                    slot.armed = false;
                }
                core.set_timer(Instant::now() + pause, TimerKind::Listener(idx));
                let mut ctl = Ctl {
                    core,
                    handle_tx: tx,
                    waker,
                };
                driver.on_accept_error(&mut ctl, &e);
                return;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::TcpStream;
    use std::sync::atomic::{AtomicUsize, Ordering};

    /// Echoes everything back, uppercasing; pauses itself when it sees
    /// "PAUSE", closes on "QUIT", stops the loop on the Stop message.
    struct Echo {
        closes: Arc<AtomicUsize>,
        accept_errs: usize,
        timer_fired: bool,
    }

    enum Msg {
        Stop,
        Poke(ConnId),
    }

    impl Driver for Echo {
        type Msg = Msg;

        fn on_data(&mut self, ctl: &mut Ctl<'_, Msg>, conn: ConnId, buf: &mut Vec<u8>) {
            let bytes = std::mem::take(buf);
            if bytes.windows(5).any(|w| w == b"PAUSE") {
                ctl.pause(conn);
            }
            ctl.send(conn, &bytes.to_ascii_uppercase());
            if bytes.windows(4).any(|w| w == b"QUIT") {
                ctl.close(conn);
            }
        }

        fn on_close(&mut self, _ctl: &mut Ctl<'_, Msg>, _conn: ConnId, _reason: &CloseReason) {
            self.closes.fetch_add(1, Ordering::SeqCst);
        }

        fn on_msg(&mut self, ctl: &mut Ctl<'_, Msg>, msg: Msg) {
            match msg {
                Msg::Stop => ctl.stop(),
                Msg::Poke(conn) => ctl.resume(conn),
            }
        }

        fn on_timer(&mut self, _ctl: &mut Ctl<'_, Msg>, tag: u64) {
            assert_eq!(tag, 99);
            self.timer_fired = true;
        }

        fn on_accept_error(&mut self, _ctl: &mut Ctl<'_, Msg>, _err: &io::Error) {
            self.accept_errs += 1;
        }
    }

    fn start_echo() -> (
        std::net::SocketAddr,
        LoopHandle<Msg>,
        std::thread::JoinHandle<Echo>,
        Arc<AtomicUsize>,
    ) {
        let closes = Arc::new(AtomicUsize::new(0));
        let driver = Echo {
            closes: Arc::clone(&closes),
            accept_errs: 0,
            timer_fired: false,
        };
        let mut el = EventLoop::new(driver, LoopConfig::default()).unwrap();
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        el.add_listener(listener).unwrap();
        let handle = el.handle();
        let t = std::thread::spawn(move || el.run().unwrap());
        (addr, handle, t, closes)
    }

    fn read_exact_timeout(s: &mut TcpStream, n: usize) -> Vec<u8> {
        s.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
        let mut buf = vec![0u8; n];
        s.read_exact(&mut buf).unwrap();
        buf
    }

    #[test]
    fn echoes_across_many_connections() {
        let (addr, handle, t, _closes) = start_echo();
        let mut conns: Vec<TcpStream> =
            (0..50).map(|_| TcpStream::connect(addr).unwrap()).collect();
        for (i, c) in conns.iter_mut().enumerate() {
            c.write_all(format!("hello-{i}").as_bytes()).unwrap();
        }
        for (i, c) in conns.iter_mut().enumerate() {
            let want = format!("HELLO-{i}");
            assert_eq!(read_exact_timeout(c, want.len()), want.as_bytes());
        }
        handle.send(Msg::Stop);
        t.join().unwrap();
    }

    #[test]
    fn close_flushes_pending_writes_first() {
        let (addr, handle, t, closes) = start_echo();
        let mut c = TcpStream::connect(addr).unwrap();
        c.write_all(b"one QUIT").unwrap();
        assert_eq!(read_exact_timeout(&mut c, 8), b"ONE QUIT");
        // Peer should now see EOF.
        let mut tail = Vec::new();
        c.read_to_end(&mut tail).unwrap();
        assert!(tail.is_empty());
        // on_close fired exactly once for the driver-initiated close.
        let deadline = Instant::now() + Duration::from_secs(5);
        while closes.load(Ordering::SeqCst) == 0 && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(5));
        }
        assert_eq!(closes.load(Ordering::SeqCst), 1);
        handle.send(Msg::Stop);
        t.join().unwrap();
    }

    #[test]
    fn pause_holds_delivery_until_resume() {
        let (addr, handle, t, _closes) = start_echo();
        let mut c = TcpStream::connect(addr).unwrap();
        c.write_all(b"PAUSE").unwrap();
        assert_eq!(read_exact_timeout(&mut c, 5), b"PAUSE");
        // While paused, nothing comes back for new data.
        c.write_all(b"later").unwrap();
        c.set_read_timeout(Some(Duration::from_millis(150)))
            .unwrap();
        let mut one = [0u8; 1];
        assert!(c.read(&mut one).is_err(), "paused conn echoed anyway");

        // We don't know the ConnId out here; a poke-all via close count
        // isn't possible, so resume by id is exercised in-driver: the
        // Poke message carries an id obtained from a fresh probe conn.
        // Simplest: open a second connection, learn nothing — instead
        // drive resume through the echo of a sentinel on conn 2 is
        // overkill; rely on the fact that ids are dense: slot 0 gen 0.
        handle.send(Msg::Poke(ConnId::new(0, 0)));
        c.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
        assert_eq!(read_exact_timeout(&mut c, 5), b"LATER");
        handle.send(Msg::Stop);
        t.join().unwrap();
    }

    #[test]
    fn peer_eof_reports_close() {
        let (addr, handle, t, closes) = start_echo();
        let c = TcpStream::connect(addr).unwrap();
        // Let the accept land, then disconnect.
        std::thread::sleep(Duration::from_millis(50));
        drop(c);
        let deadline = Instant::now() + Duration::from_secs(5);
        while closes.load(Ordering::SeqCst) == 0 && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(5));
        }
        assert_eq!(closes.load(Ordering::SeqCst), 1);
        handle.send(Msg::Stop);
        t.join().unwrap();
    }

    #[test]
    fn timers_fire_and_loop_returns_driver() {
        struct TimerDriver {
            fired: Vec<u64>,
        }
        impl Driver for TimerDriver {
            type Msg = ();
            fn on_data(&mut self, _: &mut Ctl<'_, ()>, _: ConnId, _: &mut Vec<u8>) {}
            fn on_close(&mut self, _: &mut Ctl<'_, ()>, _: ConnId, _: &CloseReason) {}
            fn on_timer(&mut self, ctl: &mut Ctl<'_, ()>, tag: u64) {
                self.fired.push(tag);
                if tag == 2 {
                    ctl.stop();
                } else {
                    ctl.set_timer(Duration::from_millis(10), tag + 1);
                }
            }
        }
        let mut el = EventLoop::new(TimerDriver { fired: vec![] }, LoopConfig::default()).unwrap();
        // Seed the first timer by driving on_timer via a zero-delay
        // arm before run: use the handle-msg path instead.
        struct Seed;
        let _ = Seed;
        // Arm directly through a pre-run injected message is not
        // possible (on_msg is unit) — arm via a listener-less loop and
        // an initial timer set through EventLoop internals:
        el.core.set_timer(Instant::now(), TimerKind::Driver(0));
        let driver = el.run().unwrap();
        assert_eq!(driver.fired, vec![0, 1, 2]);
    }
}
