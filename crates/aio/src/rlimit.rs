//! File-descriptor limit introspection and best-effort raising.
//!
//! Tens of thousands of connections need tens of thousands of fds; a
//! default soft limit of 1024 would make the accept loop live in
//! EMFILE backoff. The serve path and the connections bench call
//! [`raise_nofile`] at startup to lift the soft limit toward the hard
//! limit — silently keeping whatever the kernel grants.

use std::io;

#[cfg(unix)]
mod imp {
    use super::io;
    use core::ffi::c_int;

    #[repr(C)]
    struct RLimit {
        cur: u64,
        max: u64,
    }

    extern "C" {
        fn getrlimit(resource: c_int, rlim: *mut RLimit) -> c_int;
        fn setrlimit(resource: c_int, rlim: *const RLimit) -> c_int;
    }

    #[cfg(target_os = "linux")]
    const RLIMIT_NOFILE: c_int = 7;
    #[cfg(not(target_os = "linux"))]
    const RLIMIT_NOFILE: c_int = 8;

    pub fn nofile() -> io::Result<(u64, u64)> {
        let mut lim = RLimit { cur: 0, max: 0 };
        if unsafe { getrlimit(RLIMIT_NOFILE, &mut lim) } != 0 {
            return Err(io::Error::last_os_error());
        }
        Ok((lim.cur, lim.max))
    }

    pub fn raise(want: u64) -> u64 {
        let Ok((cur, max)) = nofile() else { return 0 };
        if cur >= want {
            return cur;
        }
        let target = want.min(max);
        let lim = RLimit { cur: target, max };
        if unsafe { setrlimit(RLIMIT_NOFILE, &lim) } == 0 {
            target
        } else {
            cur
        }
    }
}

#[cfg(not(unix))]
mod imp {
    use super::io;

    pub fn nofile() -> io::Result<(u64, u64)> {
        Err(io::Error::new(
            io::ErrorKind::Unsupported,
            "rlimit requires a Unix platform",
        ))
    }

    pub fn raise(_want: u64) -> u64 {
        0
    }
}

/// Returns `(soft, hard)` RLIMIT_NOFILE.
///
/// # Errors
///
/// Fails off Unix or if the kernel call fails.
pub fn nofile() -> io::Result<(u64, u64)> {
    imp::nofile()
}

/// Raises the soft RLIMIT_NOFILE toward `want` (capped by the hard
/// limit); returns the soft limit now in effect (best effort — never
/// fails, may return less than `want`).
pub fn raise_nofile(want: u64) -> u64 {
    imp::raise(want)
}

#[cfg(all(test, unix))]
mod tests {
    use super::*;

    #[test]
    fn nofile_reports_sane_limits() {
        let (soft, hard) = nofile().unwrap();
        assert!(soft > 0 && hard >= soft, "soft={soft} hard={hard}");
    }

    #[test]
    fn raise_is_monotone_and_capped() {
        let (soft, hard) = nofile().unwrap();
        let got = raise_nofile(soft);
        assert!(got >= soft);
        let got = raise_nofile(hard.saturating_mul(2));
        assert!(got <= hard);
        assert!(got >= soft);
    }
}
