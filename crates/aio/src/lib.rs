//! clue-aio: the readiness-based event-loop transport.
//!
//! One thread, one [`polling::Poller`], tens of thousands of
//! nonblocking sockets. The reactor owns every socket and all buffers;
//! protocol logic lives in a [`Driver`] the loop calls back into:
//!
//! * **Readiness model** — level-triggered. The loop reads a bounded
//!   chunk per readiness report and hands the accumulated bytes to
//!   [`Driver::on_data`]; whatever the driver leaves in the buffer is
//!   re-delivered when more data arrives or when reads resume.
//! * **Backpressure via registration** — [`Ctl::pause`] drops a
//!   connection's read interest without touching the socket. The
//!   kernel receive buffer fills, the peer's TCP window closes, and a
//!   fast sender is throttled by the *consumer's* real capacity — the
//!   event-loop equivalent of the threaded server's
//!   blocked-reader-thread semantics. Writes apply the same rule
//!   automatically: a connection whose outbound buffer crosses the
//!   high watermark stops reading until the buffer drains below the
//!   low watermark.
//! * **Deadline timers** — a sorted deadline map ([`Ctl::set_timer`])
//!   drives heartbeats, idle sweeps, and reconnect backoff; the poll
//!   timeout is always the nearest deadline.
//! * **Cross-thread injection** — a [`LoopHandle`] clones into any
//!   thread and [`LoopHandle::send`]s messages into the loop, waking a
//!   blocked poll through a pipe-based [`polling::Waker`]. This is how
//!   bridge threads hand completed router calls back, how dialer
//!   threads deliver connected upstreams, and how shutdown is
//!   requested.
//!
//! The accept path backs off on transient errors (EMFILE/ENFILE): the
//! listener is taken out of the interest set for a capped,
//! exponentially growing pause instead of spinning, and every such
//! error is counted and reported to [`Driver::on_accept_error`].

#![forbid(unsafe_op_in_unsafe_fn)]
#![warn(missing_docs)]

mod reactor;
pub mod rlimit;

pub use polling::Backend;
pub use reactor::{CloseReason, ConnId, Ctl, Driver, EventLoop, LoopConfig, LoopHandle, TimerId};
