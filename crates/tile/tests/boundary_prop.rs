//! Tile-boundary geometry properties: every address the tiling could
//! plausibly get wrong — tile-cut straddlers, the /0 default route,
//! /32 host routes at range extremes, and split-then-merge churn — is
//! checked against the naive flat-scan reference.
//!
//! Capacities are kept tiny (4–64 intervals) so even small generated
//! tables force many tiles, many cuts, and real split/merge traffic.

use clue_compress::TableDiff;
use clue_core::LookupPlane;
use clue_fib::{NextHop, Prefix, Route};
use clue_tile::{TileConfig, TileSet};
use proptest::prelude::*;

/// A prefix universe spanning the adversarial geometry: the default
/// route, disjoint /8s, nested /16s, and /32 host routes at the very
/// edges of their /8 (so a match interval ends exactly on a cut
/// candidate).
fn universe(i: u8) -> Prefix {
    match usize::from(i) % 81 {
        0 => Prefix::root(),
        x if x < 33 => Prefix::new(((x - 1) as u32) << 24, 8),
        x if x < 65 => Prefix::new((((x - 33) as u32) << 24) | (1 << 16), 16),
        x if x < 73 => Prefix::new((((x - 65) as u32) << 24) | 0x00FF_FFFF, 32),
        x => Prefix::new(((x - 73) as u32) << 24, 32),
    }
}

fn flat_lpm(routes: &[Route], addr: u32) -> Option<Route> {
    routes
        .iter()
        .filter(|r| r.prefix.contains_addr(addr))
        .max_by_key(|r| r.prefix.len())
        .copied()
}

/// Probes aimed at the tiling itself: both sides of every tile cut,
/// plus every route's interval ends and the addresses one past them.
fn boundary_probes(set: &TileSet, routes: &[Route]) -> Vec<u32> {
    let mut addrs = vec![0u32, 1, 0x7FFF_FFFF, 0x8000_0000, u32::MAX - 1, u32::MAX];
    for t in set.tiles() {
        addrs.extend([
            t.start(),
            t.end(),
            t.start().wrapping_sub(1),
            t.end().wrapping_add(1),
        ]);
    }
    for r in routes {
        let (lo, hi) = (r.prefix.low(), r.prefix.high());
        addrs.extend([lo, hi, lo.wrapping_sub(1), hi.wrapping_add(1)]);
    }
    addrs
}

fn dedup_routes(entries: &[(u8, u8)]) -> Vec<Route> {
    let mut routes: Vec<Route> = Vec::new();
    for &(i, nh) in entries {
        let prefix = universe(i);
        if !routes.iter().any(|r| r.prefix == prefix) {
            routes.push(Route::new(prefix, NextHop(u16::from(nh) % 8)));
        }
    }
    routes
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    /// A freshly built tile set answers every cut-straddling and
    /// route-boundary probe like the flat scan, at any capacity.
    #[test]
    fn cut_straddlers_match_flat_scan(
        entries in prop::collection::vec((any::<u8>(), any::<u8>()), 1..48),
        capacity in 4usize..64,
        random_probes in prop::collection::vec(any::<u32>(), 32),
    ) {
        let routes = dedup_routes(&entries);
        let set = TileSet::build(TileConfig::with_capacity(capacity), &routes);
        set.check_invariants();
        let plane = set.plane();
        let mut probes = boundary_probes(&set, &routes);
        probes.extend_from_slice(&random_probes);
        for addr in probes {
            prop_assert_eq!(
                plane.lookup(addr),
                flat_lpm(&routes, addr),
                "addr {:#010x} over {} tiles (capacity {})",
                addr, set.tile_count(), capacity
            );
        }
    }

    /// Incremental maintenance under random announce/withdraw churn:
    /// after every batch the invariants hold and the boundary probes
    /// agree with the flat scan of the tracked route set.
    #[test]
    fn churned_set_tracks_flat_scan(
        base in prop::collection::vec((any::<u8>(), any::<u8>()), 0..24),
        ops in prop::collection::vec((any::<u8>(), any::<bool>(), any::<u8>()), 1..48),
        capacity in 4usize..48,
    ) {
        let mut routes = dedup_routes(&base);
        let mut set = TileSet::build(TileConfig::with_capacity(capacity), &routes);
        for batch in ops.chunks(8) {
            let pre = routes.clone();
            for &(i, announce, nh) in batch {
                let prefix = universe(i);
                let held = routes.iter().position(|r| r.prefix == prefix);
                match (announce, held) {
                    (true, Some(at)) => {
                        routes[at] = Route::new(prefix, NextHop(u16::from(nh) % 8));
                    }
                    (true, None) => {
                        routes.push(Route::new(prefix, NextHop(u16::from(nh) % 8)));
                    }
                    (false, Some(at)) => {
                        routes.remove(at);
                    }
                    (false, None) => {}
                }
            }
            // Canonical set-diff of the batch (each prefix in at most
            // one list), the shape `CompressedFib::apply` emits.
            let mut diff = TableDiff {
                inserts: Vec::new(),
                deletes: Vec::new(),
                modifies: Vec::new(),
            };
            for r in &routes {
                match pre.iter().find(|p| p.prefix == r.prefix) {
                    None => diff.inserts.push(*r),
                    Some(p) if p.next_hop != r.next_hop => diff.modifies.push(*r),
                    Some(_) => {}
                }
            }
            for p in &pre {
                if !routes.iter().any(|r| r.prefix == p.prefix) {
                    diff.deletes.push(p.prefix);
                }
            }
            set.apply(&diff);
            set.check_invariants();
            let plane = set.plane();
            for addr in boundary_probes(&set, &routes) {
                prop_assert_eq!(
                    plane.lookup(addr),
                    flat_lpm(&routes, addr),
                    "addr {:#010x} after churn (capacity {})",
                    addr, capacity
                );
            }
        }
    }

    /// Split-then-merge: a burst of /24s into one narrow region forces
    /// splits; withdrawing the burst forces merges back down; the
    /// surviving answers match the flat scan at every step.
    #[test]
    fn split_then_merge_round_trip(
        burst_len in 24u32..96,
        region in 0u8..200,
        capacity in 4usize..24,
    ) {
        let base = vec![
            Route::new(Prefix::root(), NextHop(1)),
            Route::new(Prefix::new(u32::from(region) << 24, 8), NextHop(2)),
        ];
        let mut set = TileSet::build(TileConfig::with_capacity(capacity), &base);
        let tiles_before = set.tile_count();

        let burst: Vec<Route> = (0..burst_len)
            .map(|i| {
                Route::new(
                    Prefix::new((u32::from(region) << 24) | (i << 8), 24),
                    NextHop((i % 6 + 3) as u16),
                )
            })
            .collect();
        let grow = set.apply(&TableDiff {
            inserts: burst.clone(),
            deletes: Vec::new(),
            modifies: Vec::new(),
        });
        set.check_invariants();
        prop_assert!(grow.splits > 0, "burst of {} never split: {:?}", burst_len, grow);
        let mut now = base.clone();
        now.extend_from_slice(&burst);
        let plane = set.plane();
        for addr in boundary_probes(&set, &now) {
            prop_assert_eq!(plane.lookup(addr), flat_lpm(&now, addr));
        }

        let shrink = set.apply(&TableDiff {
            inserts: Vec::new(),
            deletes: burst.iter().map(|r| r.prefix).collect(),
            modifies: Vec::new(),
        });
        set.check_invariants();
        prop_assert!(shrink.merges > 0, "withdraw never merged: {:?}", shrink);
        prop_assert!(
            set.tile_count() <= tiles_before + 1,
            "{} tiles linger after drain (started at {})",
            set.tile_count(),
            tiles_before
        );
        let plane = set.plane();
        for addr in boundary_probes(&set, &base) {
            prop_assert_eq!(plane.lookup(addr), flat_lpm(&base, addr));
        }
    }
}
