use super::*;
use clue_compress::onrtc;
use clue_fib::gen::FibGen;
use clue_fib::Prefix;

fn flat_lpm(routes: &[Route], addr: u32) -> Option<Route> {
    routes
        .iter()
        .filter(|r| r.prefix.contains_addr(addr))
        .max_by_key(|r| r.prefix.len())
        .copied()
}

fn probe_addrs(routes: &[Route], set: &TileSet) -> Vec<u32> {
    let mut addrs = vec![0u32, 1, 0x8000_0000, u32::MAX - 1, u32::MAX];
    for r in routes {
        let (lo, hi) = (r.prefix.low(), r.prefix.high());
        addrs.extend([lo, hi, lo.wrapping_sub(1), hi.wrapping_add(1)]);
    }
    // Tile cut boundaries and their straddling neighbours.
    for t in &set.tiles {
        addrs.extend([
            t.start,
            t.end,
            t.start.wrapping_sub(1),
            t.end.wrapping_add(1),
        ]);
    }
    addrs
}

fn assert_matches_flat(set: &TileSet, routes: &[Route]) {
    set.check_invariants();
    let plane = set.plane();
    for addr in probe_addrs(routes, set) {
        assert_eq!(
            plane.lookup(addr),
            flat_lpm(routes, addr),
            "addr {addr:#010x}"
        );
    }
}

fn diff(inserts: &[Route], deletes: &[Prefix]) -> TableDiff {
    TableDiff {
        inserts: inserts.to_vec(),
        deletes: deletes.to_vec(),
        modifies: Vec::new(),
    }
}

fn route(bits: u32, len: u8, nh: u16) -> Route {
    Route::new(Prefix::new(bits, len), NextHop(nh))
}

#[test]
fn empty_set_is_one_miss_tile() {
    let set = TileSet::build(TileConfig::default(), &[]);
    set.check_invariants();
    assert_eq!(set.tile_count(), 1);
    assert_eq!(set.route_count(), 0);
    let plane = set.plane();
    assert!(plane.is_empty());
    for addr in [0u32, 1, 0xDEAD_BEEF, u32::MAX] {
        assert_eq!(plane.lookup(addr), None);
    }
}

#[test]
fn small_capacity_forces_many_tiles_and_stays_correct() {
    let table = onrtc(&FibGen::new(11).routes(2_000).generate());
    let routes: Vec<Route> = table.iter().collect();
    let set = TileSet::build(TileConfig::with_capacity(64), &routes);
    assert!(set.tile_count() > 10, "only {} tiles", set.tile_count());
    assert_matches_flat(&set, &routes);
    let plane = set.plane();
    assert_eq!(plane.len(), routes.len());
    assert!(plane.heap_bytes() > 0);
    assert!(plane.occupancy() > 0.0 && plane.occupancy() <= 1.0);
}

#[test]
fn overlapping_routes_resolve_longest_match() {
    let routes = [
        route(0, 0, 1),
        route(0xC000_0000, 2, 2),
        route(0xC0A8_0000, 16, 3),
        route(0xC0A8_0100, 24, 4),
        route(0xC0A8_01FE, 31, 5),
        route(0xC0A8_01FF, 32, 6),
    ];
    let set = TileSet::build(TileConfig::with_capacity(4), &routes);
    assert_matches_flat(&set, &routes);
}

#[test]
fn single_insert_rewrites_at_most_two_tiles() {
    let table = onrtc(&FibGen::new(3).routes(5_000).generate());
    let routes: Vec<Route> = table.iter().collect();
    let mut set = TileSet::build(TileConfig::with_capacity(256), &routes);
    let before = set.tile_count();
    // A /24 inside one of the generator's dense regions: its range is
    // tiny next to any tile span, so at most the tile holding it (and
    // on a cut, its neighbour) is rewritten.
    let added = route(0x0B22_3300, 24, 9);
    let churn = set.apply(&diff(&[added], &[]));
    assert!(
        churn.tiles_rewritten <= 2 + churn.splits,
        "churn {churn:?} over a {before}-tile set"
    );
    let mut now: Vec<Route> = routes.clone();
    now.retain(|r| r.prefix != added.prefix);
    now.push(added);
    assert_matches_flat(&set, &now);
}

#[test]
fn overflowing_tile_splits_and_underflow_merges_back() {
    // Start from a near-empty table with tiny tiles.
    let base = [route(0, 0, 1)];
    let mut set = TileSet::build(TileConfig::with_capacity(16), &base);
    assert_eq!(set.tile_count(), 1);

    // Pour /24s into one /16 until the tile must split.
    let burst: Vec<Route> = (0..64)
        .map(|i| route(0x0A0A_0000 + (i << 8), 24, (i % 7 + 2) as u16))
        .collect();
    let churn = set.apply(&diff(&burst, &[]));
    assert!(churn.splits > 0, "no split after overflow: {churn:?}");
    assert!(set.tile_count() > 1);
    let mut now = base.to_vec();
    now.extend_from_slice(&burst);
    assert_matches_flat(&set, &now);

    // Withdraw them all: the split tiles drain and merge back.
    let gone: Vec<Prefix> = burst.iter().map(|r| r.prefix).collect();
    let churn = set.apply(&diff(&[], &gone));
    assert!(churn.merges > 0, "no merge after underflow: {churn:?}");
    assert_eq!(set.tile_count(), 1, "drained set re-merges to one tile");
    assert_matches_flat(&set, &base);
}

#[test]
fn incremental_apply_equals_fresh_build() {
    let table = onrtc(&FibGen::new(17).routes(3_000).generate());
    let mut routes: Vec<Route> = table.iter().collect();
    let cfg = TileConfig::with_capacity(128);
    let mut set = TileSet::build(cfg, &routes);

    // Churn: withdraw every 5th route, announce replacements nearby.
    let mut removed = Vec::new();
    let mut i = 0;
    routes.retain(|r| {
        i += 1;
        if i % 5 == 0 {
            removed.push(r.prefix);
            false
        } else {
            true
        }
    });
    let added: Vec<Route> = (0..200)
        .map(|i| route(0x1500_0000 + (i << 10), 22, (i % 5 + 1) as u16))
        .collect();
    set.apply(&diff(&added, &removed));
    routes.extend_from_slice(&added);

    set.check_invariants();
    let fresh = TileSet::build(cfg, &routes);
    let (inc, scratch) = (set.plane(), fresh.plane());
    let mut addr = 0x0222_4155u32;
    for _ in 0..50_000 {
        addr = addr.wrapping_mul(0x9E37_79B9).wrapping_add(0x7F4A_7C15);
        assert_eq!(inc.lookup(addr), scratch.lookup(addr), "addr {addr:#010x}");
    }
}

#[test]
fn per_range_planes_share_boundary_tiles() {
    let table = onrtc(&FibGen::new(23).routes(4_000).generate());
    let routes: Vec<Route> = table.iter().collect();
    let set = TileSet::build(TileConfig::with_capacity(128), &routes);
    assert!(set.tile_count() >= 4);

    // Two buckets cut in the middle of some tile's range.
    let cut = 0x8000_1234u32;
    let left = set.plane_for_range(0, cut - 1);
    let right = set.plane_for_range(cut, u32::MAX);
    assert!(left.tile_count() + right.tile_count() >= set.tile_count());

    // Lookups on each side agree with the full plane.
    let full = set.plane();
    let mut addr = 0x0777_0001u32;
    for _ in 0..20_000 {
        addr = addr.wrapping_mul(0x9E37_79B9).wrapping_add(0x7F4A_7C15);
        let side = if addr < cut { &left } else { &right };
        assert_eq!(side.lookup(addr), full.lookup(addr), "addr {addr:#010x}");
    }
}

#[test]
fn install_registers_the_backend() {
    install();
    install(); // idempotent
    assert!(clue_core::backend_available(BackendKind::Tiled));
    let table = onrtc(&FibGen::new(5).routes(1_000).generate());
    let routes: Vec<Route> = table.iter().collect();
    let plane = clue_core::build_plane(BackendKind::Tiled, &routes);
    assert_eq!(plane.kind(), BackendKind::Tiled);
    assert_eq!(plane.len(), routes.len());
    for addr in [0u32, 0x0A01_0203, 0xC0A8_0101, u32::MAX] {
        assert_eq!(plane.lookup(addr), flat_lpm(&routes, addr));
    }
}

#[test]
fn churn_totals_accumulate() {
    let mut set = TileSet::build(TileConfig::with_capacity(8), &[route(0, 0, 1)]);
    let r = route(0x0A00_0000, 8, 2);
    set.apply(&diff(&[r], &[]));
    set.apply(&diff(&[], &[r.prefix]));
    let total = set.total_churn();
    assert!(total.tiles_rewritten >= 2);
    let empty = set.apply(&TableDiff {
        inserts: Vec::new(),
        deletes: Vec::new(),
        modifies: Vec::new(),
    });
    assert_eq!(empty, TileChurn::default());
    assert_eq!(set.total_churn(), total, "empty diff adds no churn");
}

#[test]
fn modifies_change_labels_in_place() {
    let base = [route(0x0A00_0000, 8, 1), route(0x0B00_0000, 8, 2)];
    let mut set = TileSet::build(TileConfig::default(), &base);
    let modified = route(0x0A00_0000, 8, 7);
    set.apply(&TableDiff {
        inserts: Vec::new(),
        deletes: Vec::new(),
        modifies: vec![modified],
    });
    let now = [modified, base[1]];
    assert_matches_flat(&set, &now);
}
