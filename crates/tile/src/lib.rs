//! Tiled TCAM scale-out: multi-million-prefix tables over fixed-size
//! tiles.
//!
//! A single TCAM chip holds the ONRTC-compressed table only up to its
//! slot budget; past that, MashUp (arXiv 2204.09813) packs the table
//! into fixed-size **tiles** and routes each lookup through two levels:
//! an **index tile** maps the address to the one leaf tile that can
//! hold its match, and the **leaf tile** resolves the longest match
//! locally. Because the per-tile content is the flattened LPM function
//! of the whole table restricted to the tile's address range (the
//! range-cut primitive of "On Ranges and Partitions in Optimal TCAMs",
//! arXiv 2212.13283), a route whose range spans several tiles is
//! *represented* in each — the tiling analogue of CLUE's dynamic
//! redundancy — and every tile is independently correct.
//!
//! That independence is what buys fast update at scale: the
//! [`TileSet`] maintainer keeps the master route trie plus the tile
//! array, and an update rewrites **only the tiles whose address range
//! it touches** (typically one), splitting a tile that overflows its
//! capacity and merging adjacent underfull tiles, instead of
//! recompressing and reloading the whole table. [`TiledPlane`] is the
//! immutable snapshot view: tiles are shared by `Arc`, so publishing a
//! new epoch after a one-tile rewrite copies one tile and reuses the
//! rest.
//!
//! Occupancy invariant: a live tile holds between 1 and
//! `capacity` intervals; a fresh build and every split aim at
//! `capacity / 2` so each tile has headroom before the next split, and
//! merges fire only when two neighbours fit in `capacity / 2` together,
//! so a merge never produces a tile that immediately wants to split
//! (hysteresis).

#![warn(missing_docs)]
#![warn(clippy::all)]

use std::sync::Arc;

use clue_compress::{range_cover, TableDiff};
use clue_core::{BackendKind, LookupPlane};
use clue_fib::{NextHop, Route, Trie};
use clue_partition::capacity_cuts;

/// Tuning for a tiled plane.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TileConfig {
    /// Maximum flattened LPM intervals per tile. A tile that exceeds
    /// this after an update is split; fresh builds and splits fill
    /// tiles to half of it.
    pub capacity: usize,
}

impl TileConfig {
    /// Default tile capacity (intervals per tile).
    pub const DEFAULT_CAPACITY: usize = 4096;

    /// A config with the given capacity.
    ///
    /// # Panics
    ///
    /// Panics if `capacity < 2` (a tile must be able to split).
    #[must_use]
    pub fn with_capacity(capacity: usize) -> Self {
        assert!(capacity >= 2, "tile capacity must be at least 2");
        TileConfig { capacity }
    }

    /// The fill a fresh build or a split aims for: half the capacity,
    /// so every tile starts with headroom.
    #[must_use]
    pub fn fill_target(self) -> usize {
        (self.capacity / 2).max(1)
    }

    /// Two adjacent tiles merge only if their combined intervals fit
    /// in this bound — equal to the fill target, so a merged tile is
    /// no fuller than a freshly split one.
    #[must_use]
    pub fn merge_limit(self) -> usize {
        self.fill_target()
    }
}

impl Default for TileConfig {
    /// `DEFAULT_CAPACITY` intervals, overridable via the
    /// `CLUE_TILE_CAPACITY` environment variable (used by the bench
    /// sweep and by `--backend tiled` runs that want a different tile
    /// geometry without a new flag on every subcommand).
    fn default() -> Self {
        let capacity = std::env::var("CLUE_TILE_CAPACITY")
            .ok()
            .and_then(|v| v.parse().ok())
            .filter(|&c| c >= 2)
            .unwrap_or(Self::DEFAULT_CAPACITY);
        TileConfig { capacity }
    }
}

/// One leaf tile: the flattened LPM function over `[start, end]`.
///
/// `entries` are `(interval start, label)` pairs in ascending order;
/// the label (the matched route, or `None` for a miss) holds until the
/// next entry's start. `entries[0].0 == start` always, so a tile
/// answers any address in its range without consulting its neighbours.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Tile {
    start: u32,
    end: u32,
    entries: Vec<(u32, Option<Route>)>,
}

impl Tile {
    /// First address this tile covers.
    #[must_use]
    pub fn start(&self) -> u32 {
        self.start
    }

    /// Last address this tile covers (inclusive).
    #[must_use]
    pub fn end(&self) -> u32 {
        self.end
    }

    /// Flattened intervals stored (the tile's occupancy numerator).
    #[must_use]
    pub fn occupied(&self) -> usize {
        self.entries.len()
    }

    /// Longest-prefix match for `addr`, which must lie in
    /// `[start, end]`.
    #[must_use]
    pub fn lookup(&self, addr: u32) -> Option<Route> {
        debug_assert!(self.start <= addr && addr <= self.end);
        let i = self.entries.partition_point(|&(s, _)| s <= addr) - 1;
        self.entries[i].1
    }

    fn heap_bytes(&self) -> usize {
        self.entries.len() * std::mem::size_of::<(u32, Option<Route>)>()
    }
}

/// Rewrite work one [`TileSet::apply`] performed.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct TileChurn {
    /// Tiles written this apply (rebuilt in place, split products, and
    /// merge products).
    pub tiles_rewritten: usize,
    /// Splits performed (an overflowing tile becoming `k` tiles counts
    /// `k - 1`).
    pub splits: usize,
    /// Merges performed (each merge removes one tile).
    pub merges: usize,
}

impl TileChurn {
    fn absorb(&mut self, other: TileChurn) {
        self.tiles_rewritten += other.tiles_rewritten;
        self.splits += other.splits;
        self.merges += other.merges;
    }
}

/// The incremental tile maintainer: master route trie + tile array.
///
/// Built once from a route snapshot; [`apply`](Self::apply) then keeps
/// the tiles in sync with a [`TableDiff`] per update batch, rewriting
/// only the affected tiles. [`plane`](Self::plane) snapshots the
/// current tiles (by `Arc`) into an immutable [`TiledPlane`].
#[derive(Debug)]
pub struct TileSet {
    cfg: TileConfig,
    trie: Trie<NextHop>,
    /// Contiguous, ascending, covering `[0, u32::MAX]` with no gaps.
    tiles: Vec<Arc<Tile>>,
    total: TileChurn,
}

impl TileSet {
    /// Builds the tile set over `routes` (overlap allowed; tiles
    /// resolve the longest match, like every other backend).
    #[must_use]
    pub fn build(cfg: TileConfig, routes: &[Route]) -> Self {
        let trie: Trie<NextHop> = Trie::from_pairs(routes.iter().map(|r| (r.prefix, r.next_hop)));
        let intervals = range_cover(&trie, 0, u32::MAX);
        let starts: Vec<u32> = intervals.iter().map(|&(s, _)| s).collect();
        let cuts = capacity_cuts(&starts, cfg.fill_target());
        let mut tiles = Vec::with_capacity(cuts.len() + 1);
        let mut rest = intervals.as_slice();
        for (i, &cut) in cuts.iter().enumerate() {
            let n = rest.partition_point(|&(s, _)| s < cut);
            let end = cut - 1;
            tiles.push(Arc::new(Tile {
                start: rest[0].0,
                end,
                entries: rest[..n].to_vec(),
            }));
            rest = &rest[n..];
            debug_assert_eq!(rest[0].0, cut, "cut {i} not on an interval start");
        }
        tiles.push(Arc::new(Tile {
            start: rest[0].0,
            end: u32::MAX,
            entries: rest.to_vec(),
        }));
        TileSet {
            cfg,
            trie,
            tiles,
            total: TileChurn::default(),
        }
    }

    /// The config this set was built with.
    #[must_use]
    pub fn config(&self) -> TileConfig {
        self.cfg
    }

    /// Routes currently represented.
    #[must_use]
    pub fn route_count(&self) -> usize {
        self.trie.len()
    }

    /// Leaf tiles currently live.
    #[must_use]
    pub fn tile_count(&self) -> usize {
        self.tiles.len()
    }

    /// Cumulative churn over every `apply` since build.
    #[must_use]
    pub fn total_churn(&self) -> TileChurn {
        self.total
    }

    /// Mean fill fraction: stored intervals over total tile capacity.
    #[must_use]
    pub fn occupancy(&self) -> f64 {
        let stored: usize = self.tiles.iter().map(|t| t.occupied()).sum();
        stored as f64 / (self.tiles.len() * self.cfg.capacity) as f64
    }

    /// Index-tile step: which leaf tile covers `addr`.
    #[must_use]
    pub fn tile_of(&self, addr: u32) -> usize {
        self.tiles.partition_point(|t| t.start <= addr) - 1
    }

    /// The live tiles, ascending by range (for diagnostics and tests).
    #[must_use]
    pub fn tiles(&self) -> &[Arc<Tile>] {
        &self.tiles
    }

    /// Applies one batch diff, rewriting only the tiles whose address
    /// range the changed prefixes touch, and splitting/merging as
    /// occupancy demands. Returns what was rewritten.
    ///
    /// `diff` must be a canonical set-diff — each prefix in at most one
    /// of the three lists — which is the shape `CompressedFib::apply`
    /// emits. (With a prefix in several lists the net effect would
    /// depend on application order, which a set-diff has no notion of.)
    pub fn apply(&mut self, diff: &TableDiff) -> TileChurn {
        // 1. Mutate the master trie, collecting dirty address ranges.
        let mut ranges: Vec<(u32, u32)> = Vec::new();
        for r in diff.inserts.iter().chain(&diff.modifies) {
            self.trie.insert(r.prefix, r.next_hop);
            ranges.push((r.prefix.low(), r.prefix.high()));
        }
        for &p in &diff.deletes {
            self.trie.remove(p);
            ranges.push((p.low(), p.high()));
        }
        if ranges.is_empty() {
            return TileChurn::default();
        }

        // 2. Dirty tile indices, as sorted maximal runs.
        let mut dirty: Vec<usize> = Vec::new();
        for &(lo, hi) in &ranges {
            dirty.extend(self.tile_of(lo)..=self.tile_of(hi));
        }
        dirty.sort_unstable();
        dirty.dedup();

        // 3. Rebuild each maximal run of dirty tiles from the trie.
        let mut churn = TileChurn::default();
        let mut out: Vec<Arc<Tile>> = Vec::with_capacity(self.tiles.len());
        let mut next = 0usize; // next existing tile to consume
        let mut d = 0usize;
        while d < dirty.len() {
            let first = dirty[d];
            let mut last = first;
            while d + 1 < dirty.len() && dirty[d + 1] == last + 1 {
                d += 1;
                last = dirty[d];
            }
            d += 1;
            out.extend_from_slice(&self.tiles[next..first]);
            churn.absorb(self.rebuild_run(first, last, &mut out));
            next = last + 1;
        }
        out.extend_from_slice(&self.tiles[next..]);
        self.tiles = out;

        // 4. Merge pass around what was rewritten. A merge writes one
        // more tile, so it counts toward the rewrite total.
        churn.merges = self.merge_pass(&dirty, churn.splits);
        churn.tiles_rewritten += churn.merges;
        self.total.absorb(churn);
        churn
    }

    /// Rebuilds tiles `first..=last` from the trie into `out`,
    /// splitting on overflow. Returns the rewrite/split counts.
    fn rebuild_run(&self, first: usize, last: usize, out: &mut Vec<Arc<Tile>>) -> TileChurn {
        let lo = self.tiles[first].start;
        let hi = self.tiles[last].end;
        let old_count = last - first + 1;
        // Rebuild each dirty tile over its own range so clean cut
        // points survive and churn stays local to the edit.
        let mut produced = 0usize;
        for t in &self.tiles[first..=last] {
            let entries = range_cover(&self.trie, t.start, t.end);
            if entries.len() <= self.cfg.capacity {
                produced += 1;
                out.push(Arc::new(Tile {
                    start: t.start,
                    end: t.end,
                    entries,
                }));
                continue;
            }
            // Overflow: split into chunks near the fill target.
            let starts: Vec<u32> = entries.iter().map(|&(s, _)| s).collect();
            let cuts = capacity_cuts(&starts, self.cfg.fill_target());
            let mut rest = entries.as_slice();
            for &cut in &cuts {
                let n = rest.partition_point(|&(s, _)| s < cut);
                out.push(Arc::new(Tile {
                    start: rest[0].0,
                    end: cut - 1,
                    entries: rest[..n].to_vec(),
                }));
                rest = &rest[n..];
                produced += 1;
            }
            out.push(Arc::new(Tile {
                start: rest[0].0,
                end: t.end,
                entries: rest.to_vec(),
            }));
            produced += 1;
        }
        debug_assert_eq!(out.last().unwrap().end, hi);
        debug_assert_eq!(out[out.len() - produced].start, lo);
        TileChurn {
            tiles_rewritten: produced,
            splits: produced - old_count,
            merges: 0,
        }
    }

    /// Greedy left-to-right merge over the dirty neighbourhoods: two
    /// adjacent tiles merge while their combined occupancy fits
    /// `merge_limit()` and at least one of them was just rewritten.
    /// Returns the number of merges.
    fn merge_pass(&mut self, dirty: &[usize], splits: usize) -> usize {
        if self.tiles.len() < 2 || dirty.is_empty() {
            return 0;
        }
        // Splits shift indices right of the split point; widening the
        // candidate window by the split count keeps every rewritten
        // tile (and its neighbours) in scope without re-deriving exact
        // indices.
        let lo_tile = dirty[0].saturating_sub(1);
        let hi_tile = (dirty[dirty.len() - 1] + splits + 1).min(self.tiles.len() - 1);
        let mut merges = 0usize;
        let mut i = lo_tile;
        while i < hi_tile.min(self.tiles.len().saturating_sub(1)) {
            let combined = self.tiles[i].occupied() + self.tiles[i + 1].occupied();
            if combined <= self.cfg.merge_limit() {
                let a = &self.tiles[i];
                let b = &self.tiles[i + 1];
                let mut entries = Vec::with_capacity(combined);
                entries.extend_from_slice(&a.entries);
                // Coalesce the boundary if the label continues across it.
                if entries.last().map(|(_, l)| l) == Some(&b.entries[0].1) {
                    entries.extend_from_slice(&b.entries[1..]);
                } else {
                    entries.extend_from_slice(&b.entries);
                }
                let merged = Arc::new(Tile {
                    start: a.start,
                    end: b.end,
                    entries,
                });
                self.tiles.splice(i..=i + 1, [merged]);
                merges += 1;
                // Stay at i: the merged tile may absorb another
                // underfull right neighbour.
            } else {
                i += 1;
            }
        }
        merges
    }

    /// Snapshots the whole set as an immutable plane (tiles shared by
    /// `Arc`, so this is O(tile count), not O(routes)).
    #[must_use]
    pub fn plane(&self) -> TiledPlane {
        TiledPlane {
            starts: self.tiles.iter().map(|t| t.start).collect(),
            tiles: self.tiles.clone(),
            entries: self.trie.len(),
            capacity: self.cfg.capacity,
        }
    }

    /// Snapshots only the tiles overlapping `[lo, hi]` — the epoch
    /// publication path hands each lookup worker the plane for its
    /// partition bucket, and a tile spanning a bucket cut is *shared*
    /// (one `Arc`, two planes) rather than copied: tiling's answer to
    /// dynamic redundancy.
    #[must_use]
    pub fn plane_for_range(&self, lo: u32, hi: u32) -> TiledPlane {
        let first = self.tile_of(lo);
        let last = self.tile_of(hi);
        let tiles: Vec<Arc<Tile>> = self.tiles[first..=last].to_vec();
        TiledPlane {
            starts: tiles.iter().map(|t| t.start).collect(),
            tiles,
            entries: self.trie.len(),
            capacity: self.cfg.capacity,
        }
    }

    /// Structural invariants, asserted by tests after every operation:
    /// contiguous coverage of the full address space, every tile
    /// non-empty, within capacity, and self-anchored (first entry at
    /// the tile start).
    ///
    /// # Panics
    ///
    /// Panics if an invariant is violated.
    pub fn check_invariants(&self) {
        assert!(!self.tiles.is_empty());
        assert_eq!(self.tiles[0].start, 0, "coverage starts at 0");
        assert_eq!(
            self.tiles.last().unwrap().end,
            u32::MAX,
            "coverage ends at MAX"
        );
        for w in self.tiles.windows(2) {
            assert_eq!(
                w[1].start,
                w[0].end + 1,
                "tiles contiguous at {:#x}",
                w[0].end
            );
        }
        for t in &self.tiles {
            assert!(t.start <= t.end);
            assert!(!t.entries.is_empty(), "tile holds at least one interval");
            assert!(
                t.entries.len() <= self.cfg.capacity,
                "tile over capacity: {} > {}",
                t.entries.len(),
                self.cfg.capacity
            );
            assert_eq!(t.entries[0].0, t.start, "tile anchored at its start");
            assert!(t.entries.windows(2).all(|w| w[0].0 < w[1].0));
            assert!(t.entries.last().unwrap().0 <= t.end);
        }
    }
}

/// The immutable two-level snapshot: the index (`starts`) routes an
/// address to its leaf tile, the leaf tile resolves the match.
#[derive(Debug)]
pub struct TiledPlane {
    /// The index tile: `starts[i]` is `tiles[i].start`.
    starts: Vec<u32>,
    tiles: Vec<Arc<Tile>>,
    entries: usize,
    capacity: usize,
}

impl TiledPlane {
    /// Builds a standalone plane over a route snapshot with `cfg`.
    #[must_use]
    pub fn build(cfg: TileConfig, routes: &[Route]) -> Self {
        TileSet::build(cfg, routes).plane()
    }

    /// Leaf tiles behind this plane.
    #[must_use]
    pub fn tile_count(&self) -> usize {
        self.tiles.len()
    }

    /// Mean fill fraction over this plane's tiles.
    #[must_use]
    pub fn occupancy(&self) -> f64 {
        let stored: usize = self.tiles.iter().map(|t| t.occupied()).sum();
        stored as f64 / (self.tiles.len() * self.capacity) as f64
    }
}

impl LookupPlane for TiledPlane {
    fn kind(&self) -> BackendKind {
        BackendKind::Tiled
    }

    fn lookup(&self, addr: u32) -> Option<Route> {
        if self.starts.is_empty() || addr < self.starts[0] {
            return None;
        }
        let i = self.starts.partition_point(|&s| s <= addr) - 1;
        let tile = &self.tiles[i];
        if addr > tile.end {
            return None;
        }
        tile.lookup(addr)
    }

    fn len(&self) -> usize {
        self.entries
    }

    fn heap_bytes(&self) -> usize {
        self.starts.len() * std::mem::size_of::<u32>()
            + self
                .tiles
                .iter()
                .map(|t| t.heap_bytes() + std::mem::size_of::<Arc<Tile>>())
                .sum::<usize>()
    }
}

fn build_tiled_plane(routes: &[Route]) -> Box<dyn LookupPlane> {
    Box::new(TiledPlane::build(TileConfig::default(), routes))
}

/// Registers the `tiled` backend with `clue-core`'s plane registry so
/// `build_plane(BackendKind::Tiled, ..)` works process-wide.
/// Idempotent; every entry point that may run with `--backend tiled`
/// (router service, oracle, CLI, benches) calls it.
pub fn install() {
    clue_core::register_tiled_builder(build_tiled_plane);
}

#[cfg(test)]
mod tests;
