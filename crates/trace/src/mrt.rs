//! A dependency-free, bounds-checked MRT (RFC 6396) codec.
//!
//! Two record families matter for driving the CLUE stack:
//!
//! * **TABLE_DUMP_V2** RIB dumps (type 13) — a `PEER_INDEX_TABLE`
//!   record followed by `RIB_IPV4_UNICAST` records, each carrying one
//!   prefix and its per-peer BGP attribute sets. [`parse_rib`] turns a
//!   dump into an [`MrtRib`]; [`MrtRib::to_table`] extracts the initial
//!   FIB (prefix → first peer's `NEXT_HOP`, interned through a
//!   [`NextHopDict`]). `RIB_IPV6_UNICAST` records are decoded too —
//!   prefix, per-peer entries, and `MP_REACH_NLRI` next hops — into
//!   [`MrtRib::v6_records`] so dual-stack dumps are counted faithfully;
//!   feeding them to the (v4) lookup pipeline is out of scope.
//! * **BGP4MP / BGP4MP_ET** update streams (types 16/17) — one BGP
//!   UPDATE message per record with announce NLRI, withdrawn routes,
//!   and second (plus microsecond, for `_ET`) timestamps.
//!   [`parse_updates`] turns a stream into an [`MrtUpdates`];
//!   [`MrtUpdates::to_trace`] produces the timed
//!   [`UpdateTrace`](crate::UpdateTrace) a scenario replays.
//!
//! The matching encoders ([`MrtRib::encode`], [`MrtUpdates::encode`])
//! exist so fixtures are generated and verified **fully offline**: for
//! any structure the encoders emit, `encode(parse(bytes)) == bytes`
//! holds bit-for-bit. Real collector dumps parse too — unknown record
//! types, multicast subtypes, non-UPDATE BGP messages, and unmodeled
//! path attributes are skipped (counted in `skipped`), so only the
//! round-trip of *canonical* fixtures is guaranteed.
//!
//! Every read is bounds-checked through [`clue_core::codec::Cursor`];
//! truncated or bit-flipped input fails with `InvalidData`, never a
//! panic (the shared corruption-corpus tests in `tests/roundtrip.rs`
//! pin this down).

use std::collections::BTreeMap;
use std::io;

use clue_core::codec::{bad_data, Cursor};
use clue_fib::{NextHop, Prefix, Route, RouteTable, Update};

use crate::timed::{TimedUpdate, UpdateTrace};

/// MRT type: TABLE_DUMP_V2 (RFC 6396 §4.3).
pub const MRT_TABLE_DUMP_V2: u16 = 13;
/// MRT type: BGP4MP (RFC 6396 §4.4).
pub const MRT_BGP4MP: u16 = 16;
/// MRT type: BGP4MP_ET — BGP4MP with a microsecond timestamp extension
/// (RFC 6396 §3; the canonical encoder always uses this form so timed
/// traces survive a round trip at millisecond precision).
pub const MRT_BGP4MP_ET: u16 = 17;

/// TABLE_DUMP_V2 subtype: the peer index table.
pub const TDV2_PEER_INDEX_TABLE: u16 = 1;
/// TABLE_DUMP_V2 subtype: one IPv4-unicast RIB prefix.
pub const TDV2_RIB_IPV4_UNICAST: u16 = 2;
/// TABLE_DUMP_V2 subtype: one IPv6-unicast RIB prefix.
pub const TDV2_RIB_IPV6_UNICAST: u16 = 4;

/// BGP4MP subtype: BGP message, 2-byte AS numbers.
pub const BGP4MP_MESSAGE: u16 = 1;
/// BGP4MP subtype: BGP message, 4-byte AS numbers.
pub const BGP4MP_MESSAGE_AS4: u16 = 4;

/// BGP path attribute: NEXT_HOP (the only attribute the v4 FIB needs).
const ATTR_NEXT_HOP: u8 = 3;
/// BGP path attribute: MP_REACH_NLRI — in TABLE_DUMP_V2 RIB entries it
/// is abbreviated to just the next-hop length and address (RFC 6396
/// §4.3.4), which is how IPv6 next hops are recorded.
const ATTR_MP_REACH_NLRI: u8 = 14;
/// BGP attribute flag: two-byte (extended) length field.
const ATTR_EXT_LEN: u8 = 0x10;
/// BGP message type: UPDATE.
const BGP_UPDATE: u8 = 2;
/// BGP message fixed header: 16-byte marker + length + type.
const BGP_HEADER: usize = 19;
/// Address family: IPv4.
const AFI_IPV4: u16 = 1;

/// A BGP peer's address, as wide as the dump recorded it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PeerIp {
    /// IPv4 peer address.
    V4(u32),
    /// IPv6 peer address (parsed for fidelity; the FIB side is IPv4).
    V6([u8; 16]),
}

/// One entry of the `PEER_INDEX_TABLE`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MrtPeer {
    /// The peer's BGP identifier.
    pub bgp_id: u32,
    /// The peer's address.
    pub ip: PeerIp,
    /// The peer's AS number.
    pub asn: u32,
    /// Whether the dump recorded a 4-byte AS number (preserved so a
    /// parsed record re-encodes bit-identically).
    pub as4: bool,
}

/// One peer's view of a RIB prefix.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RibEntry {
    /// Index into [`MrtRib::peers`].
    pub peer_index: u16,
    /// When the route was originated (seconds since the epoch).
    pub originated: u32,
    /// The `NEXT_HOP` attribute's IPv4 address, when present. Other
    /// path attributes are not modeled (and are dropped on parse).
    pub next_hop: Option<u32>,
}

/// One `RIB_IPV4_UNICAST` record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RibRecord {
    /// The MRT record timestamp (seconds since the epoch).
    pub timestamp: u32,
    /// The dump's sequence number for this prefix.
    pub seq: u32,
    /// The prefix itself.
    pub prefix: Prefix,
    /// Per-peer entries (real dumps carry one per peer that announced
    /// the prefix; canonical fixtures carry exactly one).
    pub entries: Vec<RibEntry>,
}

/// One peer's view of an IPv6 RIB prefix.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RibEntryV6 {
    /// Index into [`MrtRib::peers`].
    pub peer_index: u16,
    /// When the route was originated (seconds since the epoch).
    pub originated: u32,
    /// The `MP_REACH_NLRI` next-hop address (global address when the
    /// entry also carried a link-local one), when present.
    pub next_hop: Option<[u8; 16]>,
}

/// One `RIB_IPV6_UNICAST` record.
///
/// Decoded for fidelity and counting (`clue trace info` reports them);
/// conversion into the v4 lookup pipeline is out of scope, so
/// [`MrtRib::to_table`] ignores these.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RibV6Record {
    /// The MRT record timestamp (seconds since the epoch).
    pub timestamp: u32,
    /// The dump's sequence number for this prefix.
    pub seq: u32,
    /// The prefix bits, network byte order, zero-padded to 16 bytes.
    pub prefix: [u8; 16],
    /// The prefix length in bits (0–128).
    pub prefix_len: u8,
    /// Per-peer entries, as recorded.
    pub entries: Vec<RibEntryV6>,
}

/// A parsed TABLE_DUMP_V2 RIB dump.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MrtRib {
    /// Timestamp of the `PEER_INDEX_TABLE` record.
    pub timestamp: u32,
    /// The collector's BGP identifier.
    pub collector: u32,
    /// The dump's view name (usually empty or `"rib"`).
    pub view_name: String,
    /// The peer index table.
    pub peers: Vec<MrtPeer>,
    /// The per-prefix IPv4 records, in dump order.
    pub records: Vec<RibRecord>,
    /// The per-prefix IPv6 records, in dump order. The canonical
    /// encoder emits them after every IPv4 record.
    pub v6_records: Vec<RibV6Record>,
    /// Records the parser skipped (multicast subtypes, unknown types).
    /// Always 0 for canonical fixtures; not part of the encoding.
    pub skipped: u64,
}

/// One BGP UPDATE message from a BGP4MP stream.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BgpUpdate {
    /// MRT record timestamp (seconds since the epoch).
    pub timestamp: u32,
    /// Microsecond remainder (0 unless the record was BGP4MP_ET).
    pub micros: u32,
    /// Whether the record was BGP4MP_ET (preserved for round-trip).
    pub et: bool,
    /// Whether AS numbers were 4-byte (`BGP4MP_MESSAGE_AS4`).
    pub as4: bool,
    /// The announcing peer's AS.
    pub peer_as: u32,
    /// The collector's AS.
    pub local_as: u32,
    /// Interface index (0 in practice).
    pub if_index: u16,
    /// The peer's IPv4 address.
    pub peer_ip: u32,
    /// The collector's IPv4 address.
    pub local_ip: u32,
    /// Withdrawn prefixes, in wire order.
    pub withdrawn: Vec<Prefix>,
    /// Announced prefixes (NLRI), in wire order.
    pub announced: Vec<Prefix>,
    /// The `NEXT_HOP` attribute for the announced NLRI.
    pub next_hop: Option<u32>,
}

/// A parsed BGP4MP update stream.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct MrtUpdates {
    /// The UPDATE messages, in stream order.
    pub messages: Vec<BgpUpdate>,
    /// Records the parser skipped (state changes, non-UPDATE messages,
    /// IPv6 address families, unknown types). Not part of the encoding.
    pub skipped: u64,
}

/// Interns next-hop IPv4 addresses as the dense [`NextHop`] indices the
/// rest of the stack speaks. One dict must be shared between a RIB dump
/// and its update stream so both halves agree on the numbering.
#[derive(Debug, Clone, Default)]
pub struct NextHopDict {
    ips: Vec<u32>,
    by_ip: BTreeMap<u32, u16>,
}

impl NextHopDict {
    /// An empty dictionary.
    #[must_use]
    pub fn new() -> Self {
        NextHopDict::default()
    }

    /// Returns the index for `ip`, assigning the next free one on first
    /// sight.
    ///
    /// # Panics
    ///
    /// Panics if more than `u16::MAX + 1` distinct next hops appear
    /// (real tables carry a few dozen).
    pub fn intern(&mut self, ip: u32) -> NextHop {
        if let Some(&i) = self.by_ip.get(&ip) {
            return NextHop(i);
        }
        let i = u16::try_from(self.ips.len()).expect("more than 65536 distinct next hops");
        self.ips.push(ip);
        self.by_ip.insert(ip, i);
        NextHop(i)
    }

    /// The canonical IPv4 address the encoders emit for a next-hop
    /// index: `10.255.hi.lo`. Injective, so generated fixtures survive
    /// the round trip with a stable numbering.
    #[must_use]
    pub fn canonical_ip(nh: NextHop) -> u32 {
        0x0AFF_0000 | u32::from(nh.0)
    }

    /// Distinct next hops interned so far.
    #[must_use]
    pub fn len(&self) -> usize {
        self.ips.len()
    }

    /// Whether nothing has been interned yet.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.ips.is_empty()
    }
}

// ---------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------

/// Splits the next MRT record off `cur`: `(timestamp, type, subtype,
/// body)`. The declared length is bounds-checked against the remaining
/// input, so a truncated or inflated length field fails here.
fn read_record<'a>(cur: &mut Cursor<'a>) -> io::Result<(u32, u16, u16, &'a [u8])> {
    let timestamp = cur.u32()?;
    let typ = cur.u16()?;
    let subtype = cur.u16()?;
    let len = cur.u32()? as usize;
    let body = cur.take(len)?;
    Ok((timestamp, typ, subtype, body))
}

/// Reads one `(len, bits)` prefix in BGP wire form: a bit count
/// followed by `ceil(len/8)` address bytes.
fn read_prefix(cur: &mut Cursor<'_>) -> io::Result<Prefix> {
    let len = cur.u8()?;
    if len > 32 {
        return Err(bad_data(format!("prefix length {len} exceeds 32")));
    }
    let nbytes = usize::from(len).div_ceil(8);
    let raw = cur.take(nbytes)?;
    let mut bits = [0u8; 4];
    bits[..nbytes].copy_from_slice(raw);
    Ok(Prefix::new(u32::from_be_bytes(bits), len))
}

/// Reads one `(len, bits)` IPv6 prefix in BGP wire form.
fn read_prefix_v6(cur: &mut Cursor<'_>) -> io::Result<([u8; 16], u8)> {
    let len = cur.u8()?;
    if len > 128 {
        return Err(bad_data(format!("IPv6 prefix length {len} exceeds 128")));
    }
    let nbytes = usize::from(len).div_ceil(8);
    let raw = cur.take(nbytes)?;
    let mut bits = [0u8; 16];
    bits[..nbytes].copy_from_slice(raw);
    Ok((bits, len))
}

/// Scans a path-attribute block for the IPv6 next hop: the abbreviated
/// `MP_REACH_NLRI` of RFC 6396 §4.3.4 (next-hop length byte, then one
/// 16-byte address, or two when a link-local follows the global one).
fn scan_attrs_v6(block: &[u8]) -> io::Result<Option<[u8; 16]>> {
    let mut cur = Cursor::new(block);
    let mut next_hop = None;
    while cur.consumed() < block.len() {
        let flags = cur.u8()?;
        let typ = cur.u8()?;
        let len = if flags & ATTR_EXT_LEN != 0 {
            usize::from(cur.u16()?)
        } else {
            usize::from(cur.u8()?)
        };
        let value = cur.take(len)?;
        if typ == ATTR_MP_REACH_NLRI {
            let (&nh_len, rest) = value
                .split_first()
                .ok_or_else(|| bad_data("empty MP_REACH_NLRI".into()))?;
            if !(nh_len == 16 || nh_len == 32) || rest.len() < usize::from(nh_len) {
                return Err(bad_data(format!(
                    "MP_REACH_NLRI next-hop length {nh_len} over {} bytes",
                    rest.len()
                )));
            }
            next_hop = Some(rest[..16].try_into().unwrap());
        }
    }
    cur.finish()?;
    Ok(next_hop)
}

/// Scans a path-attribute block for `NEXT_HOP`, bounds-checking every
/// attribute header and dropping the rest.
fn scan_attrs(block: &[u8]) -> io::Result<Option<u32>> {
    let mut cur = Cursor::new(block);
    let mut next_hop = None;
    while cur.consumed() < block.len() {
        let flags = cur.u8()?;
        let typ = cur.u8()?;
        let len = if flags & ATTR_EXT_LEN != 0 {
            usize::from(cur.u16()?)
        } else {
            usize::from(cur.u8()?)
        };
        let value = cur.take(len)?;
        if typ == ATTR_NEXT_HOP {
            if len != 4 {
                return Err(bad_data(format!("NEXT_HOP attribute of {len} bytes")));
            }
            next_hop = Some(u32::from_be_bytes(value.try_into().unwrap()));
        }
    }
    cur.finish()?;
    Ok(next_hop)
}

fn parse_peer_index(timestamp: u32, body: &[u8]) -> io::Result<MrtRib> {
    let mut cur = Cursor::new(body);
    let collector = cur.u32()?;
    let name_len = usize::from(cur.u16()?);
    let name = cur.take(name_len)?;
    let view_name =
        String::from_utf8(name.to_vec()).map_err(|_| bad_data("view name is not UTF-8".into()))?;
    let count = usize::from(cur.u16()?);
    let mut peers = Vec::with_capacity(count.min(4096));
    for _ in 0..count {
        let peer_type = cur.u8()?;
        if peer_type & !0x03 != 0 {
            return Err(bad_data(format!("unknown peer type bits {peer_type:#04x}")));
        }
        let bgp_id = cur.u32()?;
        let ip = if peer_type & 0x01 != 0 {
            PeerIp::V6(cur.take(16)?.try_into().unwrap())
        } else {
            PeerIp::V4(cur.u32()?)
        };
        let as4 = peer_type & 0x02 != 0;
        let asn = if as4 {
            cur.u32()?
        } else {
            u32::from(cur.u16()?)
        };
        peers.push(MrtPeer {
            bgp_id,
            ip,
            asn,
            as4,
        });
    }
    cur.finish()?;
    Ok(MrtRib {
        timestamp,
        collector,
        view_name,
        peers,
        records: Vec::new(),
        v6_records: Vec::new(),
        skipped: 0,
    })
}

fn parse_rib_v6_record(timestamp: u32, body: &[u8], peer_count: usize) -> io::Result<RibV6Record> {
    let mut cur = Cursor::new(body);
    let seq = cur.u32()?;
    let (prefix, prefix_len) = read_prefix_v6(&mut cur)?;
    let count = usize::from(cur.u16()?);
    let mut entries = Vec::with_capacity(count.min(4096));
    for _ in 0..count {
        let peer_index = cur.u16()?;
        if usize::from(peer_index) >= peer_count {
            return Err(bad_data(format!(
                "RIB entry names peer {peer_index} of {peer_count}"
            )));
        }
        let originated = cur.u32()?;
        let attr_len = usize::from(cur.u16()?);
        let attrs = cur.take(attr_len)?;
        entries.push(RibEntryV6 {
            peer_index,
            originated,
            next_hop: scan_attrs_v6(attrs)?,
        });
    }
    cur.finish()?;
    Ok(RibV6Record {
        timestamp,
        seq,
        prefix,
        prefix_len,
        entries,
    })
}

fn parse_rib_record(timestamp: u32, body: &[u8], peer_count: usize) -> io::Result<RibRecord> {
    let mut cur = Cursor::new(body);
    let seq = cur.u32()?;
    let prefix = read_prefix(&mut cur)?;
    let count = usize::from(cur.u16()?);
    let mut entries = Vec::with_capacity(count.min(4096));
    for _ in 0..count {
        let peer_index = cur.u16()?;
        if usize::from(peer_index) >= peer_count {
            return Err(bad_data(format!(
                "RIB entry names peer {peer_index} of {peer_count}"
            )));
        }
        let originated = cur.u32()?;
        let attr_len = usize::from(cur.u16()?);
        let attrs = cur.take(attr_len)?;
        entries.push(RibEntry {
            peer_index,
            originated,
            next_hop: scan_attrs(attrs)?,
        });
    }
    cur.finish()?;
    Ok(RibRecord {
        timestamp,
        seq,
        prefix,
        entries,
    })
}

/// Parses a TABLE_DUMP_V2 RIB dump.
///
/// The first TABLE_DUMP_V2 record must be the `PEER_INDEX_TABLE`;
/// `RIB_IPV4_UNICAST` and `RIB_IPV6_UNICAST` records follow (v6
/// prefixes and next hops are decoded into [`MrtRib::v6_records`]).
/// Records of other types or subtypes are skipped (counted in
/// [`MrtRib::skipped`]).
///
/// # Errors
///
/// Fails with `InvalidData` on truncation, a length field pointing past
/// the input, malformed peer/attribute encodings, a prefix longer than
/// /32, or an entry naming a peer the index table does not hold.
pub fn parse_rib(bytes: &[u8]) -> io::Result<MrtRib> {
    let mut cur = Cursor::new(bytes);
    let mut rib: Option<MrtRib> = None;
    while cur.consumed() < bytes.len() {
        let (timestamp, typ, subtype, body) = read_record(&mut cur)?;
        if typ != MRT_TABLE_DUMP_V2 {
            if let Some(r) = rib.as_mut() {
                r.skipped += 1;
            }
            continue;
        }
        match (subtype, rib.as_mut()) {
            (TDV2_PEER_INDEX_TABLE, None) => rib = Some(parse_peer_index(timestamp, body)?),
            (TDV2_PEER_INDEX_TABLE, Some(_)) => {
                return Err(bad_data("second PEER_INDEX_TABLE in one dump".into()))
            }
            (TDV2_RIB_IPV4_UNICAST, Some(r)) => {
                let record = parse_rib_record(timestamp, body, r.peers.len())?;
                r.records.push(record);
            }
            (TDV2_RIB_IPV6_UNICAST, Some(r)) => {
                let record = parse_rib_v6_record(timestamp, body, r.peers.len())?;
                r.v6_records.push(record);
            }
            (_, Some(r)) => r.skipped += 1,
            (_, None) => {
                return Err(bad_data(format!(
                    "TABLE_DUMP_V2 subtype {subtype} before the PEER_INDEX_TABLE"
                )))
            }
        }
    }
    cur.finish()?;
    rib.ok_or_else(|| bad_data("dump holds no PEER_INDEX_TABLE".into()))
}

fn parse_bgp4mp_body(
    timestamp: u32,
    micros: u32,
    et: bool,
    as4: bool,
    body: &[u8],
) -> io::Result<Option<BgpUpdate>> {
    let mut cur = Cursor::new(body);
    let (peer_as, local_as) = if as4 {
        (cur.u32()?, cur.u32()?)
    } else {
        (u32::from(cur.u16()?), u32::from(cur.u16()?))
    };
    let if_index = cur.u16()?;
    let afi = cur.u16()?;
    if afi != AFI_IPV4 {
        // IPv6 feed: consume nothing further, let the caller skip it.
        return Ok(None);
    }
    let peer_ip = cur.u32()?;
    let local_ip = cur.u32()?;

    // The BGP message: 16-byte all-ones marker, length, type.
    let marker = cur.take(16)?;
    if marker.iter().any(|&b| b != 0xFF) {
        return Err(bad_data("BGP marker is not all ones".into()));
    }
    let msg_len = usize::from(cur.u16()?);
    if msg_len < BGP_HEADER {
        return Err(bad_data(format!("BGP message length {msg_len} < 19")));
    }
    let msg_type = cur.u8()?;
    let msg_body = cur.take(msg_len - BGP_HEADER)?;
    cur.finish()?;
    if msg_type != BGP_UPDATE {
        return Ok(None); // OPEN / KEEPALIVE / NOTIFICATION: skip.
    }

    let mut mcur = Cursor::new(msg_body);
    let wd_len = usize::from(mcur.u16()?);
    let wd_block = mcur.take(wd_len)?;
    let mut wd_cur = Cursor::new(wd_block);
    let mut withdrawn = Vec::new();
    while wd_cur.consumed() < wd_block.len() {
        withdrawn.push(read_prefix(&mut wd_cur)?);
    }
    let attr_len = usize::from(mcur.u16()?);
    let attrs = mcur.take(attr_len)?;
    let next_hop = scan_attrs(attrs)?;
    let mut announced = Vec::new();
    while mcur.consumed() < msg_body.len() {
        announced.push(read_prefix(&mut mcur)?);
    }
    Ok(Some(BgpUpdate {
        timestamp,
        micros,
        et,
        as4,
        peer_as,
        local_as,
        if_index,
        peer_ip,
        local_ip,
        withdrawn,
        announced,
        next_hop,
    }))
}

/// Parses a BGP4MP / BGP4MP_ET update stream.
///
/// Records that are not IPv4 BGP UPDATE messages (state changes,
/// OPEN/KEEPALIVE, IPv6 address families, unknown MRT types) are
/// skipped and counted in [`MrtUpdates::skipped`].
///
/// # Errors
///
/// Fails with `InvalidData` on truncation, bad markers, malformed
/// attribute blocks, or prefixes longer than /32.
pub fn parse_updates(bytes: &[u8]) -> io::Result<MrtUpdates> {
    let mut cur = Cursor::new(bytes);
    let mut out = MrtUpdates::default();
    while cur.consumed() < bytes.len() {
        let (timestamp, typ, subtype, body) = read_record(&mut cur)?;
        let et = match typ {
            MRT_BGP4MP => false,
            MRT_BGP4MP_ET => true,
            _ => {
                out.skipped += 1;
                continue;
            }
        };
        let (micros, body) = if et {
            let mut head = Cursor::new(body);
            let micros = head.u32()?;
            if micros >= 1_000_000 {
                return Err(bad_data(format!("microsecond field {micros} out of range")));
            }
            (micros, &body[4..])
        } else {
            (0, body)
        };
        let as4 = match subtype {
            BGP4MP_MESSAGE => false,
            BGP4MP_MESSAGE_AS4 => true,
            _ => {
                out.skipped += 1; // state changes and local variants
                continue;
            }
        };
        match parse_bgp4mp_body(timestamp, micros, et, as4, body)? {
            Some(msg) => out.messages.push(msg),
            None => out.skipped += 1,
        }
    }
    cur.finish()?;
    Ok(out)
}

// ---------------------------------------------------------------------
// Encoding
// ---------------------------------------------------------------------

fn push_record(out: &mut Vec<u8>, timestamp: u32, typ: u16, subtype: u16, body: &[u8]) {
    out.extend_from_slice(&timestamp.to_be_bytes());
    out.extend_from_slice(&typ.to_be_bytes());
    out.extend_from_slice(&subtype.to_be_bytes());
    out.extend_from_slice(&(body.len() as u32).to_be_bytes());
    out.extend_from_slice(body);
}

fn push_prefix(out: &mut Vec<u8>, prefix: Prefix) {
    out.push(prefix.len());
    let nbytes = usize::from(prefix.len()).div_ceil(8);
    out.extend_from_slice(&prefix.bits().to_be_bytes()[..nbytes]);
}

fn push_next_hop_attr(out: &mut Vec<u8>, ip: u32) {
    out.push(0x40); // well-known transitive
    out.push(ATTR_NEXT_HOP);
    out.push(4);
    out.extend_from_slice(&ip.to_be_bytes());
}

impl MrtRib {
    /// Encodes the dump as MRT bytes: the `PEER_INDEX_TABLE` record,
    /// one `RIB_IPV4_UNICAST` record per [`RibRecord`], then one
    /// `RIB_IPV6_UNICAST` record per [`RibV6Record`].
    ///
    /// # Panics
    ///
    /// Panics if a peer marked `as4: false` carries an AS number beyond
    /// 16 bits, or if the view name exceeds `u16::MAX` bytes (canonical
    /// constructors never do either).
    #[must_use]
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(64 + self.records.len() * 32);
        let mut body = Vec::with_capacity(32 + self.peers.len() * 12);
        body.extend_from_slice(&self.collector.to_be_bytes());
        let name = self.view_name.as_bytes();
        body.extend_from_slice(
            &u16::try_from(name.len())
                .expect("view name fits u16")
                .to_be_bytes(),
        );
        body.extend_from_slice(name);
        body.extend_from_slice(&(self.peers.len() as u16).to_be_bytes());
        for p in &self.peers {
            let mut peer_type = 0u8;
            if matches!(p.ip, PeerIp::V6(_)) {
                peer_type |= 0x01;
            }
            if p.as4 {
                peer_type |= 0x02;
            }
            body.push(peer_type);
            body.extend_from_slice(&p.bgp_id.to_be_bytes());
            match p.ip {
                PeerIp::V4(ip) => body.extend_from_slice(&ip.to_be_bytes()),
                PeerIp::V6(ip) => body.extend_from_slice(&ip),
            }
            if p.as4 {
                body.extend_from_slice(&p.asn.to_be_bytes());
            } else {
                let asn = u16::try_from(p.asn).expect("2-byte peer AS fits u16");
                body.extend_from_slice(&asn.to_be_bytes());
            }
        }
        push_record(
            &mut out,
            self.timestamp,
            MRT_TABLE_DUMP_V2,
            TDV2_PEER_INDEX_TABLE,
            &body,
        );
        for r in &self.records {
            body.clear();
            body.extend_from_slice(&r.seq.to_be_bytes());
            push_prefix(&mut body, r.prefix);
            body.extend_from_slice(&(r.entries.len() as u16).to_be_bytes());
            for e in &r.entries {
                body.extend_from_slice(&e.peer_index.to_be_bytes());
                body.extend_from_slice(&e.originated.to_be_bytes());
                let mut attrs = Vec::with_capacity(8);
                if let Some(ip) = e.next_hop {
                    push_next_hop_attr(&mut attrs, ip);
                }
                body.extend_from_slice(&(attrs.len() as u16).to_be_bytes());
                body.extend_from_slice(&attrs);
            }
            push_record(
                &mut out,
                r.timestamp,
                MRT_TABLE_DUMP_V2,
                TDV2_RIB_IPV4_UNICAST,
                &body,
            );
        }
        for r in &self.v6_records {
            body.clear();
            body.extend_from_slice(&r.seq.to_be_bytes());
            body.push(r.prefix_len);
            let nbytes = usize::from(r.prefix_len).div_ceil(8);
            body.extend_from_slice(&r.prefix[..nbytes]);
            body.extend_from_slice(&(r.entries.len() as u16).to_be_bytes());
            for e in &r.entries {
                body.extend_from_slice(&e.peer_index.to_be_bytes());
                body.extend_from_slice(&e.originated.to_be_bytes());
                let mut attrs = Vec::with_capacity(20);
                if let Some(nh) = e.next_hop {
                    // Abbreviated MP_REACH_NLRI: optional flag, one
                    // global next hop.
                    attrs.push(0x80);
                    attrs.push(ATTR_MP_REACH_NLRI);
                    attrs.push(17);
                    attrs.push(16);
                    attrs.extend_from_slice(&nh);
                }
                body.extend_from_slice(&(attrs.len() as u16).to_be_bytes());
                body.extend_from_slice(&attrs);
            }
            push_record(
                &mut out,
                r.timestamp,
                MRT_TABLE_DUMP_V2,
                TDV2_RIB_IPV6_UNICAST,
                &body,
            );
        }
        out
    }

    /// Builds a canonical dump from a routing table: one synthetic
    /// peer, one single-entry record per route (dump order), next hops
    /// mapped through [`NextHopDict::canonical_ip`].
    #[must_use]
    pub fn from_table(table: &RouteTable, timestamp: u32) -> MrtRib {
        MrtRib {
            timestamp,
            collector: 0x0A00_0001,
            view_name: "clue".to_owned(),
            peers: vec![MrtPeer {
                bgp_id: 0x0A00_0001,
                ip: PeerIp::V4(0x0A00_0001),
                asn: 64_512,
                as4: true,
            }],
            records: table
                .iter()
                .enumerate()
                .map(|(i, route)| RibRecord {
                    timestamp,
                    seq: i as u32,
                    prefix: route.prefix,
                    entries: vec![RibEntry {
                        peer_index: 0,
                        originated: timestamp,
                        next_hop: Some(NextHopDict::canonical_ip(route.next_hop)),
                    }],
                })
                .collect(),
            v6_records: Vec::new(),
            skipped: 0,
        }
    }

    /// Extracts the initial FIB: per prefix, the first entry carrying a
    /// `NEXT_HOP`, interned through `dict`. Records with no usable next
    /// hop are dropped (real dumps occasionally hold them), and
    /// [`v6_records`](Self::v6_records) are not converted (the lookup
    /// pipeline is IPv4).
    #[must_use]
    pub fn to_table(&self, dict: &mut NextHopDict) -> RouteTable {
        self.records
            .iter()
            .filter_map(|r| {
                let ip = r.entries.iter().find_map(|e| e.next_hop)?;
                Some(Route::new(r.prefix, dict.intern(ip)))
            })
            .collect()
    }
}

impl MrtUpdates {
    /// Encodes the stream as MRT bytes, one BGP4MP(_ET) record per
    /// message.
    ///
    /// # Panics
    ///
    /// Panics if a message marked `as4: false` carries an AS beyond 16
    /// bits, sets `micros` without `et`, or is too large for a BGP
    /// message (canonical constructors never do any of these).
    #[must_use]
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.messages.len() * 64);
        let mut body = Vec::with_capacity(96);
        for m in &self.messages {
            body.clear();
            if m.et {
                assert!(m.micros < 1_000_000, "microseconds out of range");
                body.extend_from_slice(&m.micros.to_be_bytes());
            } else {
                assert_eq!(m.micros, 0, "micros need an _ET record");
            }
            if m.as4 {
                body.extend_from_slice(&m.peer_as.to_be_bytes());
                body.extend_from_slice(&m.local_as.to_be_bytes());
            } else {
                let pa = u16::try_from(m.peer_as).expect("2-byte peer AS fits u16");
                let la = u16::try_from(m.local_as).expect("2-byte local AS fits u16");
                body.extend_from_slice(&pa.to_be_bytes());
                body.extend_from_slice(&la.to_be_bytes());
            }
            body.extend_from_slice(&m.if_index.to_be_bytes());
            body.extend_from_slice(&AFI_IPV4.to_be_bytes());
            body.extend_from_slice(&m.peer_ip.to_be_bytes());
            body.extend_from_slice(&m.local_ip.to_be_bytes());

            let mut wd = Vec::with_capacity(m.withdrawn.len() * 5);
            for &p in &m.withdrawn {
                push_prefix(&mut wd, p);
            }
            let mut attrs = Vec::with_capacity(8);
            if let Some(ip) = m.next_hop {
                push_next_hop_attr(&mut attrs, ip);
            }
            let mut nlri = Vec::with_capacity(m.announced.len() * 5);
            for &p in &m.announced {
                push_prefix(&mut nlri, p);
            }
            let msg_len = BGP_HEADER + 2 + wd.len() + 2 + attrs.len() + nlri.len();
            body.extend_from_slice(&[0xFF; 16]);
            body.extend_from_slice(
                &u16::try_from(msg_len)
                    .expect("BGP message fits u16")
                    .to_be_bytes(),
            );
            body.push(BGP_UPDATE);
            body.extend_from_slice(&(wd.len() as u16).to_be_bytes());
            body.extend_from_slice(&wd);
            body.extend_from_slice(&(attrs.len() as u16).to_be_bytes());
            body.extend_from_slice(&attrs);
            body.extend_from_slice(&nlri);

            let typ = if m.et { MRT_BGP4MP_ET } else { MRT_BGP4MP };
            let subtype = if m.as4 {
                BGP4MP_MESSAGE_AS4
            } else {
                BGP4MP_MESSAGE
            };
            push_record(&mut out, m.timestamp, typ, subtype, &body);
        }
        out
    }

    /// Builds a canonical stream from a timed trace: one BGP4MP_ET
    /// UPDATE per event, timestamps offset from `base_ts` at
    /// millisecond precision, next hops mapped through
    /// [`NextHopDict::canonical_ip`].
    #[must_use]
    pub fn from_trace(trace: &UpdateTrace, base_ts: u32) -> MrtUpdates {
        MrtUpdates {
            messages: trace
                .events
                .iter()
                .map(|e| {
                    let (withdrawn, announced, next_hop) = match e.update {
                        Update::Announce { prefix, next_hop } => (
                            Vec::new(),
                            vec![prefix],
                            Some(NextHopDict::canonical_ip(next_hop)),
                        ),
                        Update::Withdraw { prefix } => (vec![prefix], Vec::new(), None),
                    };
                    BgpUpdate {
                        timestamp: base_ts + u32::try_from(e.at_ms / 1000).unwrap_or(u32::MAX),
                        micros: (e.at_ms % 1000) as u32 * 1000,
                        et: true,
                        as4: true,
                        peer_as: 64_512,
                        local_as: 64_513,
                        if_index: 0,
                        peer_ip: 0x0A00_0001,
                        local_ip: 0x0A00_0002,
                        withdrawn,
                        announced,
                        next_hop,
                    }
                })
                .collect(),
            skipped: 0,
        }
    }

    /// Converts the stream into a timed [`UpdateTrace`], offsets
    /// relative to the first message. Per message, withdrawals come
    /// before announcements (matching BGP UPDATE semantics). Announced
    /// prefixes in a message with no `NEXT_HOP` attribute are dropped.
    #[must_use]
    pub fn to_trace(&self, dict: &mut NextHopDict) -> UpdateTrace {
        let Some(first) = self.messages.first() else {
            return UpdateTrace::default();
        };
        let t0 = u64::from(first.timestamp) * 1000 + u64::from(first.micros) / 1000;
        let mut events = Vec::with_capacity(self.messages.len());
        for m in &self.messages {
            let at = u64::from(m.timestamp) * 1000 + u64::from(m.micros) / 1000;
            let at_ms = at.saturating_sub(t0);
            for &prefix in &m.withdrawn {
                events.push(TimedUpdate {
                    at_ms,
                    update: Update::Withdraw { prefix },
                });
            }
            if let Some(ip) = m.next_hop {
                let next_hop = dict.intern(ip);
                for &prefix in &m.announced {
                    events.push(TimedUpdate {
                        at_ms,
                        update: Update::Announce { prefix, next_hop },
                    });
                }
            }
        }
        UpdateTrace { events }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dict_interns_stably() {
        let mut d = NextHopDict::new();
        let a = d.intern(10);
        let b = d.intern(20);
        assert_eq!(d.intern(10), a);
        assert_ne!(a, b);
        assert_eq!(d.len(), 2);
    }

    #[test]
    fn canonical_ip_is_injective_over_u16() {
        assert_ne!(
            NextHopDict::canonical_ip(NextHop(0)),
            NextHopDict::canonical_ip(NextHop(1))
        );
        assert_eq!(NextHopDict::canonical_ip(NextHop(0x0102)), 0x0AFF_0102);
    }

    #[test]
    fn empty_inputs_are_rejected_or_empty() {
        assert!(parse_rib(&[]).is_err()); // no PEER_INDEX_TABLE
        let u = parse_updates(&[]).unwrap();
        assert!(u.messages.is_empty());
    }

    #[test]
    fn prefix_shorter_than_a_byte_round_trips() {
        let mut buf = Vec::new();
        push_prefix(&mut buf, Prefix::new(0x8000_0000, 3));
        assert_eq!(buf, vec![3, 0x80]);
        let mut cur = Cursor::new(&buf);
        assert_eq!(read_prefix(&mut cur).unwrap(), Prefix::new(0x8000_0000, 3));
        cur.finish().unwrap();
    }

    #[test]
    fn over_long_prefix_is_rejected() {
        let buf = vec![33, 0, 0, 0, 0, 0];
        let mut cur = Cursor::new(&buf);
        assert!(read_prefix(&mut cur).is_err());
    }

    fn v6_record(seq: u32, top: u8, nh: Option<[u8; 16]>) -> RibV6Record {
        let mut prefix = [0u8; 16];
        prefix[0] = 0x20;
        prefix[1] = top;
        RibV6Record {
            timestamp: 1_700_000_000,
            seq,
            prefix,
            prefix_len: 32,
            entries: vec![RibEntryV6 {
                peer_index: 0,
                originated: 1_700_000_000,
                next_hop: nh,
            }],
        }
    }

    #[test]
    fn dual_stack_dump_round_trips_with_v6_decoded() {
        let table: RouteTable = [(Prefix::new(0x0A00_0000, 8), NextHop(1))]
            .into_iter()
            .collect();
        let mut rib = MrtRib::from_table(&table, 1_700_000_000);
        let mut nh = [0u8; 16];
        nh[0] = 0xFD;
        nh[15] = 0x01;
        rib.v6_records.push(v6_record(100, 0x01, Some(nh)));
        rib.v6_records.push(v6_record(101, 0x02, None));

        let bytes = rib.encode();
        let parsed = parse_rib(&bytes).expect("dual-stack dump parses");
        assert_eq!(parsed, rib, "v6 records survive the round trip");
        assert_eq!(parsed.encode(), bytes, "re-encode is bit-identical");
        assert_eq!(parsed.skipped, 0, "v6 records are decoded, not skipped");
        assert_eq!(parsed.v6_records[0].entries[0].next_hop, Some(nh));

        // The v4 pipeline extraction ignores the v6 side.
        let mut dict = NextHopDict::new();
        assert_eq!(parsed.to_table(&mut dict).len(), 1);
    }

    #[test]
    fn v6_prefix_pads_partial_bytes() {
        // A /20 occupies 3 wire bytes; the rest must come back zero.
        let mut body = Vec::new();
        body.extend_from_slice(&7u32.to_be_bytes()); // seq
        body.extend_from_slice(&[20, 0x20, 0x01, 0xD0]); // 2001:d::/20
        body.extend_from_slice(&0u16.to_be_bytes()); // no entries
        let mut out = MrtRib::from_table(&RouteTable::new(), 1).encode();
        push_record(&mut out, 1, MRT_TABLE_DUMP_V2, TDV2_RIB_IPV6_UNICAST, &body);
        let parsed = parse_rib(&out).expect("v6 record parses");
        let r = &parsed.v6_records[0];
        assert_eq!(r.prefix_len, 20);
        assert_eq!(&r.prefix[..3], &[0x20, 0x01, 0xD0]);
        assert!(r.prefix[3..].iter().all(|&b| b == 0));
    }

    #[test]
    fn v6_link_local_pair_takes_the_global_hop() {
        // nh_len 32: global followed by link-local; the global wins.
        let mut value = vec![32u8];
        let mut global = [0u8; 16];
        global[0] = 0x20;
        value.extend_from_slice(&global);
        value.extend_from_slice(&[0xFE; 16]);
        let mut block = vec![0x80, ATTR_MP_REACH_NLRI, value.len() as u8];
        block.extend_from_slice(&value);
        assert_eq!(scan_attrs_v6(&block).unwrap(), Some(global));
    }

    #[test]
    fn v6_over_long_prefix_is_rejected() {
        let mut body = Vec::new();
        body.extend_from_slice(&0u32.to_be_bytes());
        body.push(129); // prefix length out of range
        body.extend_from_slice(&0u16.to_be_bytes());
        let mut out = MrtRib::from_table(&RouteTable::new(), 1).encode();
        push_record(&mut out, 1, MRT_TABLE_DUMP_V2, TDV2_RIB_IPV6_UNICAST, &body);
        assert!(parse_rib(&out).is_err());
    }
}
