//! Timed update traces: the schedule half of a scenario.
//!
//! A plain `Vec<Update>` says *what* churned; replaying a real BGP feed
//! (or an adversarial storm) also needs *when*. [`UpdateTrace`] attaches
//! a millisecond offset to every update, relative to the trace's start,
//! so a replay can run at recorded speed, scaled, or flat out.

use clue_fib::Update;

/// One update with its offset from the start of the trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TimedUpdate {
    /// Milliseconds since the first event of the trace.
    pub at_ms: u64,
    /// The route update itself.
    pub update: Update,
}

/// A timed sequence of route updates, ordered by `at_ms`.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct UpdateTrace {
    /// The events, non-decreasing in `at_ms`.
    pub events: Vec<TimedUpdate>,
}

impl UpdateTrace {
    /// Builds a trace from updates spaced `gap_ms` apart.
    #[must_use]
    pub fn evenly_spaced(updates: &[Update], gap_ms: u64) -> UpdateTrace {
        UpdateTrace {
            events: updates
                .iter()
                .enumerate()
                .map(|(i, &update)| TimedUpdate {
                    at_ms: i as u64 * gap_ms,
                    update,
                })
                .collect(),
        }
    }

    /// The bare updates, in schedule order (timestamps dropped).
    #[must_use]
    pub fn updates(&self) -> Vec<Update> {
        self.events.iter().map(|e| e.update).collect()
    }

    /// Number of events.
    #[must_use]
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether the trace holds no events.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Offset of the last event (0 for an empty trace): the trace's
    /// duration at recorded speed.
    #[must_use]
    pub fn duration_ms(&self) -> u64 {
        self.events.last().map_or(0, |e| e.at_ms)
    }

    /// The trace with every offset divided by `speed` (2.0 = twice as
    /// fast). A non-positive `speed` collapses all offsets to zero
    /// (replay flat out).
    #[must_use]
    pub fn scaled(&self, speed: f64) -> UpdateTrace {
        UpdateTrace {
            events: self
                .events
                .iter()
                .map(|e| TimedUpdate {
                    at_ms: if speed > 0.0 {
                        (e.at_ms as f64 / speed).round() as u64
                    } else {
                        0
                    },
                    update: e.update,
                })
                .collect(),
        }
    }

    /// Peak events in any single millisecond — the burst intensity a
    /// replay must absorb.
    #[must_use]
    pub fn peak_per_ms(&self) -> usize {
        let mut best = 0usize;
        let mut run = 0usize;
        let mut at = None;
        for e in &self.events {
            if at == Some(e.at_ms) {
                run += 1;
            } else {
                at = Some(e.at_ms);
                run = 1;
            }
            best = best.max(run);
        }
        best
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use clue_fib::{NextHop, Prefix};

    fn upd(i: u32) -> Update {
        Update::Announce {
            prefix: Prefix::new(i << 8, 24),
            next_hop: NextHop(1),
        }
    }

    #[test]
    fn even_spacing_and_duration() {
        let t = UpdateTrace::evenly_spaced(&[upd(1), upd(2), upd(3)], 10);
        assert_eq!(t.len(), 3);
        assert_eq!(t.duration_ms(), 20);
        assert_eq!(t.updates().len(), 3);
    }

    #[test]
    fn scaling_speeds_up_and_flattens() {
        let t = UpdateTrace::evenly_spaced(&[upd(1), upd(2), upd(3)], 100);
        assert_eq!(t.scaled(2.0).duration_ms(), 100);
        assert_eq!(t.scaled(0.0).duration_ms(), 0);
        assert_eq!(t.scaled(1.0), t);
    }

    #[test]
    fn peak_counts_same_millisecond_runs() {
        let mut t = UpdateTrace::evenly_spaced(&[upd(1), upd(2), upd(3)], 0);
        assert_eq!(t.peak_per_ms(), 3);
        t.events[2].at_ms = 5;
        assert_eq!(t.peak_per_ms(), 2);
        assert_eq!(UpdateTrace::default().peak_per_ms(), 0);
    }
}
