//! `clue-trace` — real-trace ingestion and the adversarial scenario
//! engine.
//!
//! Every other result in the workspace is measured against calibrated
//! *synthetic* generators, but the paper's claims are about real
//! routing tables, and compression/entropy behaviour depends heavily on
//! real prefix distributions (PAPERS.md — Rétvári et al. evaluate
//! exclusively on real RIB dumps). This crate closes that gap with two
//! halves:
//!
//! * [`mrt`] — a dependency-free, bounds-checked binary codec for MRT
//!   (RFC 6396): TABLE_DUMP_V2 RIB dumps (`PEER_INDEX_TABLE` +
//!   `RIB_IPV4_UNICAST` → an initial FIB) and BGP4MP update messages
//!   (announce/withdraw with timestamps → a timed [`UpdateTrace`]).
//!   A matching *encoder* generates canonical fixtures, so the
//!   round-trip property — `encode(parse(bytes)) == bytes` — is
//!   verified fully offline, with no network and no committed
//!   third-party dumps; real dumps parse when present.
//! * [`scenario`] — a [`Scenario`] abstraction composing a base table,
//!   a timed update schedule, and a packet-key distribution into named
//!   first-class workloads: `update-storm`, `withdraw-flood`,
//!   `flap-storm`, `ddos-skew`, and `mrt-replay`.
//!
//! The CLI front ends are `clue trace info|gen|replay`,
//! `clue loadgen --scenario`, and `clue check --scenario`; the oracle's
//! scenario phase (`clue-oracle`) drives every scenario through all
//! three lookup backends and asserts zero lost acks.

#![warn(missing_docs)]
#![warn(clippy::all)]

pub mod mrt;
pub mod scenario;
mod timed;

pub use mrt::{
    parse_rib, parse_updates, BgpUpdate, MrtPeer, MrtRib, MrtUpdates, NextHopDict, PeerIp,
    RibEntry, RibEntryV6, RibRecord, RibV6Record,
};
pub use scenario::{Scenario, ScenarioConfig, ScenarioKind};
pub use timed::{TimedUpdate, UpdateTrace};
