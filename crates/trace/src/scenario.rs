//! The adversarial scenario engine.
//!
//! A [`Scenario`] composes three things every full-stack experiment
//! needs: a **base table**, a **timed update schedule**, and a
//! **packet-key distribution**. Five named workloads cover the attack
//! surfaces the paper's update/lookup race exposes:
//!
//! | name             | stress                                          |
//! |------------------|-------------------------------------------------|
//! | `update-storm`   | bursts of churn at a sustained rate             |
//! | `withdraw-flood` | mass withdraw of a whole subtree, then recovery |
//! | `flap-storm`     | announce/withdraw oscillation on hot prefixes   |
//! | `ddos-skew`      | Zipf-concentrated lookups on a few targets      |
//! | `mrt-replay`     | a real MRT trace at recorded or scaled speed    |
//!
//! Every synthetic scenario is a pure function of a
//! [`ScenarioConfig`] (same seed → same scenario, byte for byte), and
//! every schedule keeps the generator invariant the rest of the stack
//! assumes: **withdrawals only ever name currently-present prefixes**
//! when the schedule is applied in order from the base table.
//! `withdraw-flood` and `flap-storm` additionally end exactly where
//! they started (final table == base), which the oracle's scenario
//! phase exploits as a free convergence check.

use std::fmt;
use std::str::FromStr;

use clue_fib::gen::FibGen;
use clue_fib::{Prefix, Route, RouteTable, Update};
use clue_traffic::{PacketGen, UpdateGen, Zipf};
use rand::{rngs::StdRng, Rng, SeedableRng};

use crate::mrt::{MrtRib, MrtUpdates, NextHopDict};
use crate::timed::{TimedUpdate, UpdateTrace};

/// Salt decorrelating the base-table stream from other seeded streams.
const BASE_SALT: u64 = 0x7_C0DE_0001;
/// Salt for the update-schedule stream.
const SCHEDULE_SALT: u64 = 0x7_C0DE_0002;
/// Salt for the packet-key stream.
const PACKET_SALT: u64 = 0x7_C0DE_0003;

/// The five named workloads.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ScenarioKind {
    /// Bursts of mixed churn at a sustained rate.
    UpdateStorm,
    /// Mass withdraw of a whole subtree, then full re-announce.
    WithdrawFlood,
    /// Announce/withdraw oscillation concentrated on hot prefixes.
    FlapStorm,
    /// Zipf-concentrated lookup keys on a handful of targets.
    DdosSkew,
    /// Replay of an MRT trace (canonical fixture unless real bytes are
    /// supplied) at recorded or scaled timestamps.
    MrtReplay,
}

impl ScenarioKind {
    /// All five kinds, in canonical order.
    pub const ALL: [ScenarioKind; 5] = [
        ScenarioKind::UpdateStorm,
        ScenarioKind::WithdrawFlood,
        ScenarioKind::FlapStorm,
        ScenarioKind::DdosSkew,
        ScenarioKind::MrtReplay,
    ];

    /// The kebab-case name used on the CLI and in bench output.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            ScenarioKind::UpdateStorm => "update-storm",
            ScenarioKind::WithdrawFlood => "withdraw-flood",
            ScenarioKind::FlapStorm => "flap-storm",
            ScenarioKind::DdosSkew => "ddos-skew",
            ScenarioKind::MrtReplay => "mrt-replay",
        }
    }
}

impl fmt::Display for ScenarioKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

impl FromStr for ScenarioKind {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        ScenarioKind::ALL
            .into_iter()
            .find(|k| k.name() == s)
            .ok_or_else(|| {
                let names: Vec<&str> = ScenarioKind::ALL.iter().map(|k| k.name()).collect();
                format!(
                    "unknown scenario '{s}' (expected one of: {})",
                    names.join(", ")
                )
            })
    }
}

/// Tuning knobs shared by the scenario builders. `Default` gives the
/// sizes the oracle's scenario phase and the benches use.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScenarioConfig {
    /// Master seed; every derived stream is salted off it.
    pub seed: u64,
    /// Routes in the synthetic base table.
    pub routes: usize,
    /// Total scheduled updates (approximate for flap/withdraw shapes,
    /// which must balance to restore the base table).
    pub updates: usize,
    /// Lookup keys to generate.
    pub packets: usize,
    /// Updates landing in the same millisecond during a storm burst.
    pub burst: usize,
    /// Milliseconds of quiet between storm bursts.
    pub gap_ms: u64,
    /// Hot prefixes oscillated by `flap-storm`.
    pub flap_targets: usize,
    /// Victim prefixes concentrated on by `ddos-skew`.
    pub ddos_targets: usize,
    /// Zipf exponent for the `ddos-skew` key distribution.
    pub zipf: f64,
    /// Replay speed for `mrt-replay` (2.0 = twice recorded speed;
    /// <= 0 replays flat out).
    pub speed: f64,
}

impl Default for ScenarioConfig {
    fn default() -> Self {
        ScenarioConfig {
            seed: 7,
            routes: 2000,
            updates: 5000,
            packets: 20_000,
            burst: 256,
            gap_ms: 50,
            flap_targets: 16,
            ddos_targets: 8,
            zipf: 3.0,
            speed: 1.0,
        }
    }
}

/// A fully-materialised workload: base table, timed schedule, lookup
/// keys.
#[derive(Debug, Clone)]
pub struct Scenario {
    /// Which workload this is.
    pub kind: ScenarioKind,
    /// The table installed before the schedule starts.
    pub base: RouteTable,
    /// The timed update schedule.
    pub schedule: UpdateTrace,
    /// The lookup keys, in arrival order.
    pub packets: Vec<u32>,
}

impl Scenario {
    /// Builds the named synthetic scenario from `cfg`, deterministically.
    ///
    /// For [`ScenarioKind::MrtReplay`] this generates a canonical MRT
    /// fixture in memory (encode → parse, exercising the codec) and
    /// replays it; to replay *real* bytes use [`Scenario::from_mrt`].
    #[must_use]
    pub fn build(kind: ScenarioKind, cfg: &ScenarioConfig) -> Scenario {
        match kind {
            ScenarioKind::UpdateStorm => update_storm(cfg),
            ScenarioKind::WithdrawFlood => withdraw_flood(cfg),
            ScenarioKind::FlapStorm => flap_storm(cfg),
            ScenarioKind::DdosSkew => ddos_skew(cfg),
            ScenarioKind::MrtReplay => mrt_replay(cfg),
        }
    }

    /// Builds an `mrt-replay` scenario from parsed MRT structures: the
    /// RIB dump becomes the base table, the update stream the schedule
    /// (scaled by `cfg.speed`), with one shared [`NextHopDict`] so both
    /// halves agree on next-hop numbering. Lookup keys are drawn over
    /// the base table with the default packet generator.
    #[must_use]
    pub fn from_mrt(rib: &MrtRib, updates: &MrtUpdates, cfg: &ScenarioConfig) -> Scenario {
        let mut dict = NextHopDict::new();
        let base = rib.to_table(&mut dict);
        let schedule = updates.to_trace(&mut dict).scaled(cfg.speed);
        let packets = PacketGen::new(cfg.seed ^ PACKET_SALT).generate(&base, cfg.packets);
        Scenario {
            kind: ScenarioKind::MrtReplay,
            base,
            schedule,
            packets,
        }
    }

    /// The schedule's bare updates, in order (what the oracle applies).
    #[must_use]
    pub fn updates(&self) -> Vec<Update> {
        self.schedule.updates()
    }

    /// A short multi-line summary for `clue trace info`.
    #[must_use]
    pub fn describe(&self) -> String {
        let (mut announces, mut withdraws) = (0usize, 0usize);
        for e in &self.schedule.events {
            match e.update {
                Update::Announce { .. } => announces += 1,
                Update::Withdraw { .. } => withdraws += 1,
            }
        }
        format!(
            "scenario       {}\n\
             base routes    {}\n\
             events         {} ({announces} announce, {withdraws} withdraw)\n\
             duration       {} ms (peak {} events/ms)\n\
             packets        {}",
            self.kind,
            self.base.len(),
            self.schedule.len(),
            self.schedule.duration_ms(),
            self.schedule.peak_per_ms(),
            self.packets.len(),
        )
    }
}

/// The shared synthetic base table for a config.
fn base_table(cfg: &ScenarioConfig) -> RouteTable {
    FibGen::new(cfg.seed ^ BASE_SALT)
        .routes(cfg.routes)
        .generate()
}

/// The default lookup-key stream over `base`.
fn base_packets(cfg: &ScenarioConfig, base: &RouteTable) -> Vec<u32> {
    PacketGen::new(cfg.seed ^ PACKET_SALT).generate(base, cfg.packets)
}

/// `update-storm`: consistent mixed churn from the calibrated
/// generator, packed into bursts of `cfg.burst` same-millisecond
/// events separated by `cfg.gap_ms` of quiet.
fn update_storm(cfg: &ScenarioConfig) -> Scenario {
    let base = base_table(cfg);
    let updates = UpdateGen::new(cfg.seed ^ SCHEDULE_SALT).generate(&base, cfg.updates);
    let burst = cfg.burst.max(1);
    let events = updates
        .into_iter()
        .enumerate()
        .map(|(i, update)| TimedUpdate {
            at_ms: (i / burst) as u64 * cfg.gap_ms,
            update,
        })
        .collect();
    Scenario {
        kind: ScenarioKind::UpdateStorm,
        packets: base_packets(cfg, &base),
        base,
        schedule: UpdateTrace { events },
    }
}

/// `withdraw-flood`: every route under the most-populated /8 subtree
/// is withdrawn in one burst, then — after a `gap_ms` pause — the whole
/// subtree is re-announced with its original next hops. The final
/// table equals the base table.
fn withdraw_flood(cfg: &ScenarioConfig) -> Scenario {
    let base = base_table(cfg);
    // Pick the /8 that covers the most routes: the worst-case subtree.
    let mut counts = [0usize; 256];
    for route in base.iter() {
        if route.prefix.len() >= 8 {
            counts[(route.prefix.bits() >> 24) as usize] += 1;
        }
    }
    let top = counts
        .iter()
        .enumerate()
        .max_by_key(|&(_, c)| c)
        .map_or(0, |(i, _)| i) as u32;
    let subtree = Prefix::new(top << 24, 8);
    let victims: Vec<Route> = base.iter().filter(|r| subtree.contains(r.prefix)).collect();

    let mut events = Vec::with_capacity(victims.len() * 2);
    let burst = cfg.burst.max(1);
    for (i, r) in victims.iter().enumerate() {
        events.push(TimedUpdate {
            at_ms: (i / burst) as u64,
            update: Update::Withdraw { prefix: r.prefix },
        });
    }
    let resume = events.last().map_or(0, |e| e.at_ms) + cfg.gap_ms.max(1);
    for (i, r) in victims.iter().enumerate() {
        events.push(TimedUpdate {
            at_ms: resume + (i / burst) as u64,
            update: Update::Announce {
                prefix: r.prefix,
                next_hop: r.next_hop,
            },
        });
    }
    Scenario {
        kind: ScenarioKind::WithdrawFlood,
        packets: base_packets(cfg, &base),
        base,
        schedule: UpdateTrace { events },
    }
}

/// `flap-storm`: `cfg.flap_targets` routes oscillate withdraw →
/// announce round-robin until the event budget is spent. Cycles are
/// whole (withdraw and re-announce paired), so every target ends
/// announced with its base next hop and the final table equals the
/// base table.
fn flap_storm(cfg: &ScenarioConfig) -> Scenario {
    let base = base_table(cfg);
    let mut rng = StdRng::seed_from_u64(cfg.seed ^ SCHEDULE_SALT);
    let all: Vec<Route> = base.iter().collect();
    let want = cfg.flap_targets.clamp(1, all.len().max(1));
    let mut targets: Vec<Route> = Vec::with_capacity(want);
    let mut taken = vec![false; all.len()];
    while targets.len() < want && !all.is_empty() {
        let i = rng.random_range(0..all.len());
        if !taken[i] {
            taken[i] = true;
            targets.push(all[i]);
        }
    }

    let cycles = (cfg.updates / (2 * targets.len())).max(1);
    let mut events = Vec::with_capacity(cycles * targets.len() * 2);
    let mut at_ms = 0u64;
    for _ in 0..cycles {
        for r in &targets {
            events.push(TimedUpdate {
                at_ms,
                update: Update::Withdraw { prefix: r.prefix },
            });
            events.push(TimedUpdate {
                at_ms: at_ms + 1,
                update: Update::Announce {
                    prefix: r.prefix,
                    next_hop: r.next_hop,
                },
            });
        }
        at_ms += cfg.gap_ms.max(2);
    }
    // Lookups hammer the flapped prefixes half the time so the race
    // between oscillation and lookup is actually exercised.
    let mut packets = base_packets(cfg, &base);
    for (i, p) in packets.iter_mut().enumerate() {
        if i % 2 == 0 {
            let r = targets[rng.random_range(0..targets.len())];
            let span = r.prefix.size();
            *p = r
                .prefix
                .low()
                .wrapping_add((rng.random_range(0..span)) as u32);
        }
    }
    Scenario {
        kind: ScenarioKind::FlapStorm,
        base,
        schedule: UpdateTrace { events },
        packets,
    }
}

/// `ddos-skew`: the schedule is mild background churn; the stress is
/// in the *lookup* stream, Zipf-concentrated (`cfg.zipf`) on
/// `cfg.ddos_targets` victim prefixes.
fn ddos_skew(cfg: &ScenarioConfig) -> Scenario {
    let base = base_table(cfg);
    let updates = UpdateGen::new(cfg.seed ^ SCHEDULE_SALT).generate(&base, cfg.updates.min(1000));
    let schedule = UpdateTrace::evenly_spaced(&updates, cfg.gap_ms.max(1));

    let mut rng = StdRng::seed_from_u64(cfg.seed ^ PACKET_SALT);
    let all: Vec<Route> = base.iter().collect();
    let want = cfg.ddos_targets.clamp(1, all.len().max(1));
    let victims: Vec<Route> = (0..want)
        .map(|_| all[rng.random_range(0..all.len())])
        .collect();
    // One fixed address per victim — a DDoS hammers hosts, not ranges.
    let victim_addrs: Vec<u32> = victims
        .iter()
        .map(|r| {
            let span = r.prefix.size();
            r.prefix
                .low()
                .wrapping_add((rng.random_range(0..span)) as u32)
        })
        .collect();
    let zipf = Zipf::new(victim_addrs.len(), cfg.zipf);
    let background = base_packets(cfg, &base);
    let packets = background
        .into_iter()
        .enumerate()
        .map(|(i, p)| {
            // 9 in 10 keys hit a victim; the rest stay background noise.
            if i % 10 != 0 {
                victim_addrs[zipf.sample(&mut rng)]
            } else {
                p
            }
        })
        .collect();
    Scenario {
        kind: ScenarioKind::DdosSkew,
        base,
        schedule,
        packets,
    }
}

/// `mrt-replay` over a self-generated canonical fixture: build a
/// synthetic table and churn, encode both as MRT bytes, parse them
/// back (exercising the whole codec path), and replay the result at
/// `cfg.speed`.
fn mrt_replay(cfg: &ScenarioConfig) -> Scenario {
    let base = base_table(cfg);
    let updates = UpdateGen::new(cfg.seed ^ SCHEDULE_SALT).generate(&base, cfg.updates);
    let trace = UpdateTrace::evenly_spaced(&updates, 1);

    let rib_bytes = MrtRib::from_table(&base, 1_000_000).encode();
    let upd_bytes = MrtUpdates::from_trace(&trace, 1_000_000).encode();
    let rib = crate::mrt::parse_rib(&rib_bytes).expect("canonical RIB fixture parses");
    let upd = crate::mrt::parse_updates(&upd_bytes).expect("canonical update fixture parses");
    Scenario::from_mrt(&rib, &upd, cfg)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> ScenarioConfig {
        ScenarioConfig {
            routes: 300,
            updates: 400,
            packets: 1000,
            ..ScenarioConfig::default()
        }
    }

    /// Applying a schedule must never withdraw an absent prefix, and
    /// must report where the table lands.
    fn apply_all(base: &RouteTable, schedule: &UpdateTrace) -> RouteTable {
        let mut t = base.clone();
        for e in &schedule.events {
            if let Update::Withdraw { prefix } = e.update {
                assert!(
                    t.contains(prefix),
                    "schedule withdraws absent prefix {prefix}"
                );
            }
            t.apply(e.update);
        }
        t
    }

    #[test]
    fn names_round_trip() {
        for k in ScenarioKind::ALL {
            assert_eq!(k.name().parse::<ScenarioKind>().unwrap(), k);
        }
        assert!("bogus".parse::<ScenarioKind>().is_err());
    }

    #[test]
    fn scenarios_are_deterministic() {
        let cfg = small();
        for k in ScenarioKind::ALL {
            let a = Scenario::build(k, &cfg);
            let b = Scenario::build(k, &cfg);
            assert_eq!(a.base, b.base, "{k}: base differs");
            assert_eq!(a.schedule, b.schedule, "{k}: schedule differs");
            assert_eq!(a.packets, b.packets, "{k}: packets differ");
        }
    }

    #[test]
    fn schedules_stay_consistent() {
        let cfg = small();
        for k in ScenarioKind::ALL {
            let s = Scenario::build(k, &cfg);
            assert!(!s.schedule.is_empty(), "{k}: empty schedule");
            assert_eq!(s.packets.len(), cfg.packets, "{k}: packet count");
            apply_all(&s.base, &s.schedule);
        }
    }

    #[test]
    fn flood_and_flap_restore_the_base_table() {
        let cfg = small();
        for k in [ScenarioKind::WithdrawFlood, ScenarioKind::FlapStorm] {
            let s = Scenario::build(k, &cfg);
            let end = apply_all(&s.base, &s.schedule);
            assert_eq!(end, s.base, "{k}: final table drifted from base");
        }
    }

    #[test]
    fn storm_bursts_pack_to_config() {
        let cfg = small();
        let s = Scenario::build(ScenarioKind::UpdateStorm, &cfg);
        assert_eq!(s.schedule.peak_per_ms(), cfg.burst.min(cfg.updates));
    }

    #[test]
    fn ddos_concentrates_lookups() {
        let cfg = small();
        let s = Scenario::build(ScenarioKind::DdosSkew, &cfg);
        // The most popular single key must dominate far beyond what the
        // background generator would produce.
        let mut counts = std::collections::HashMap::new();
        for &p in &s.packets {
            *counts.entry(p).or_insert(0usize) += 1;
        }
        let max = counts.values().copied().max().unwrap_or(0);
        assert!(max > s.packets.len() / 20, "no hot key: max={max}");
    }

    #[test]
    fn mrt_replay_round_trips_through_the_codec() {
        let cfg = small();
        let s = Scenario::build(ScenarioKind::MrtReplay, &cfg);
        // The base table must survive the MRT round trip intact (modulo
        // next-hop renumbering, which the shared dict keeps consistent).
        assert_eq!(s.base.len(), base_table(&cfg).len());
        assert_eq!(s.schedule.len(), cfg.updates);
        apply_all(&s.base, &s.schedule);
    }
}
