//! The MRT codec's offline guarantees, in corruption-corpus style
//! (shared shape with `crates/store/tests/corruption.rs` and the
//! `clue-net` frame tests):
//!
//! 1. **Round trip** — for canonical fixtures the codec generates,
//!    `encode(parse(bytes)) == bytes` holds byte-for-byte, and
//!    `parse(encode(x)) == x` holds structurally.
//! 2. **Truncation** — any prefix of a valid stream either fails with
//!    a clean error or parses to a shorter stream that re-encodes to
//!    exactly the truncated input (cuts on record boundaries are valid
//!    MRT). Never a panic.
//! 3. **Bit flips** — every single-bit mutation either fails cleanly
//!    or parses; never a panic.

use clue_fib::gen::FibGen;
use clue_fib::{NextHop, Prefix, RouteTable, Update};
use clue_trace::{parse_rib, parse_updates, MrtRib, MrtUpdates, NextHopDict, UpdateTrace};
use proptest::prelude::*;

fn sample_table(seed: u64, routes: usize) -> RouteTable {
    FibGen::new(seed).routes(routes).generate()
}

fn sample_trace(seed: u64) -> UpdateTrace {
    let mut updates = Vec::new();
    for i in 0..40u32 {
        updates.push(Update::Announce {
            prefix: Prefix::new((seed as u32).wrapping_add(i) << 12, 20),
            next_hop: NextHop((i % 5) as u16),
        });
    }
    for i in 0..10u32 {
        updates.push(Update::Withdraw {
            prefix: Prefix::new((seed as u32).wrapping_add(i) << 12, 20),
        });
    }
    UpdateTrace::evenly_spaced(&updates, 3)
}

#[test]
fn rib_round_trips_bytes_and_structure() {
    for seed in [1u64, 7, 42] {
        let table = sample_table(seed, 500);
        let rib = MrtRib::from_table(&table, 1_700_000_000);
        let bytes = rib.encode();
        let parsed = parse_rib(&bytes).expect("canonical dump parses");
        assert_eq!(parsed, rib, "seed {seed}: structure drifted");
        assert_eq!(parsed.encode(), bytes, "seed {seed}: bytes drifted");

        // And the table itself survives (next hops renumbered through
        // the dict by first appearance in dump order).
        let mut dict = NextHopDict::new();
        let back = parsed.to_table(&mut dict);
        assert_eq!(back.len(), table.len(), "seed {seed}: route count");
        let prefixes: Vec<Prefix> = table.iter().map(|r| r.prefix).collect();
        let back_prefixes: Vec<Prefix> = back.iter().map(|r| r.prefix).collect();
        assert_eq!(prefixes, back_prefixes, "seed {seed}: prefixes");
    }
}

#[test]
fn updates_round_trip_bytes_structure_and_timing() {
    for seed in [1u64, 9, 77] {
        let trace = sample_trace(seed);
        let mrt = MrtUpdates::from_trace(&trace, 1_700_000_000);
        let bytes = mrt.encode();
        let parsed = parse_updates(&bytes).expect("canonical stream parses");
        assert_eq!(parsed, mrt, "seed {seed}: structure drifted");
        assert_eq!(parsed.encode(), bytes, "seed {seed}: bytes drifted");

        // Millisecond timing survives the second+microsecond split.
        let mut dict = NextHopDict::new();
        let back = parsed.to_trace(&mut dict);
        assert_eq!(back.len(), trace.len(), "seed {seed}: event count");
        let offsets: Vec<u64> = trace.events.iter().map(|e| e.at_ms).collect();
        let back_offsets: Vec<u64> = back.events.iter().map(|e| e.at_ms).collect();
        assert_eq!(offsets, back_offsets, "seed {seed}: timing drifted");
    }
}

#[test]
fn truncations_fail_cleanly_or_reencode_exactly() {
    let rib_bytes = MrtRib::from_table(&sample_table(3, 60), 1_700_000_000).encode();
    for cut in 0..rib_bytes.len() {
        match parse_rib(&rib_bytes[..cut]) {
            Err(_) => {}
            Ok(parsed) => assert_eq!(
                parsed.encode(),
                &rib_bytes[..cut],
                "truncate@{cut}: lossy accept"
            ),
        }
    }

    let upd_bytes = MrtUpdates::from_trace(&sample_trace(3), 1_700_000_000).encode();
    for cut in 0..upd_bytes.len() {
        match parse_updates(&upd_bytes[..cut]) {
            Err(_) => {}
            Ok(parsed) => assert_eq!(
                parsed.encode(),
                &upd_bytes[..cut],
                "truncate@{cut}: lossy accept"
            ),
        }
    }
}

#[test]
fn bit_flips_never_panic() {
    // Small fixtures keep the corpus (8 cases per byte) tractable.
    let rib_bytes = MrtRib::from_table(&sample_table(5, 20), 1_700_000_000).encode();
    for bit in 0..rib_bytes.len() * 8 {
        let mut b = rib_bytes.clone();
        b[bit / 8] ^= 1 << (bit % 8);
        let _ = parse_rib(&b); // Err or Ok — just never a panic.
    }

    let upd_bytes = MrtUpdates::from_trace(&sample_trace(5), 1_700_000_000).encode();
    for bit in 0..upd_bytes.len() * 8 {
        let mut b = upd_bytes.clone();
        b[bit / 8] ^= 1 << (bit % 8);
        let _ = parse_updates(&b);
    }
}

#[test]
fn huge_length_fields_are_rejected_without_allocation() {
    // Stamp u32::MAX over every aligned u32 slot; one of them is the
    // record length field. A naive decoder would try to allocate or
    // slice 4 GiB — ours must bounds-check against the remaining input.
    let base = MrtUpdates::from_trace(&sample_trace(11), 1_700_000_000).encode();
    for at in (0..base.len().saturating_sub(4)).step_by(4) {
        let mut b = base.clone();
        b[at..at + 4].copy_from_slice(&u32::MAX.to_be_bytes());
        let _ = parse_updates(&b);
        let mut b = base.clone();
        b[at..at + 4].copy_from_slice(&0x7FFF_FFFFu32.to_be_bytes());
        let _ = parse_updates(&b);
    }
}

#[test]
fn foreign_records_are_skipped_not_fatal() {
    // Splice an unknown-type record between two valid ones: tolerant
    // parse counts it in `skipped` and keeps everything else.
    let mrt = MrtUpdates::from_trace(&sample_trace(13), 1_700_000_000);
    let one = MrtUpdates {
        messages: vec![mrt.messages[0].clone()],
        skipped: 0,
    };
    let mut spliced = one.encode();
    // MRT type 99, subtype 0, 4-byte opaque body.
    spliced.extend_from_slice(&1_700_000_000u32.to_be_bytes());
    spliced.extend_from_slice(&99u16.to_be_bytes());
    spliced.extend_from_slice(&0u16.to_be_bytes());
    spliced.extend_from_slice(&4u32.to_be_bytes());
    spliced.extend_from_slice(&[0xAB; 4]);
    let two = MrtUpdates {
        messages: vec![mrt.messages[1].clone()],
        skipped: 0,
    };
    spliced.extend_from_slice(&two.encode());

    let parsed = parse_updates(&spliced).expect("tolerant parse");
    assert_eq!(parsed.messages.len(), 2);
    assert_eq!(parsed.skipped, 1);
}

proptest! {
    /// Arbitrary update traces round-trip structurally through MRT
    /// bytes — prefixes, next hops, and millisecond offsets intact.
    #[test]
    fn prop_trace_round_trip(
        events in prop::collection::vec(
            (any::<u32>(), 0u8..=32, 0u16..8, 0u64..5000, any::<bool>()),
            1..50,
        )
    ) {
        let mut at = 0u64;
        let trace = UpdateTrace {
            events: events
                .iter()
                .map(|&(bits, len, nh, gap, withdraw)| {
                    at += gap;
                    let prefix = Prefix::new(bits, len);
                    clue_trace::TimedUpdate {
                        at_ms: at,
                        update: if withdraw {
                            Update::Withdraw { prefix }
                        } else {
                            Update::Announce { prefix, next_hop: NextHop(nh) }
                        },
                    }
                })
                .collect(),
        };
        let mrt = MrtUpdates::from_trace(&trace, 1_700_000_000);
        let bytes = mrt.encode();
        let parsed = parse_updates(&bytes).unwrap();
        prop_assert_eq!(parsed.encode(), bytes);
        let mut dict = NextHopDict::new();
        let back = parsed.to_trace(&mut dict);
        // `to_trace` re-bases offsets on the first event.
        let t0 = trace.events.first().map_or(0, |e| e.at_ms);
        let original: Vec<(u64, Prefix)> = trace
            .events
            .iter()
            .map(|e| (e.at_ms - t0, match e.update {
                Update::Announce { prefix, .. } | Update::Withdraw { prefix } => prefix,
            }))
            .collect();
        let returned: Vec<(u64, Prefix)> = back
            .events
            .iter()
            .map(|e| (e.at_ms, match e.update {
                Update::Announce { prefix, .. } | Update::Withdraw { prefix } => prefix,
            }))
            .collect();
        prop_assert_eq!(original, returned);
    }
}
