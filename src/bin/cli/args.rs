//! A small, dependency-free command-line argument parser.
//!
//! Supports `--key value` flags and positional arguments, with typed
//! accessors and an unknown-flag check. Deliberately tiny — the CLI's
//! needs do not justify an external parser crate (see DESIGN.md §2.12).

use std::collections::BTreeMap;
use std::fmt;

/// Parsed command-line flags and positionals.
#[derive(Debug, Clone, Default)]
pub struct Args {
    flags: BTreeMap<String, String>,
    positionals: Vec<String>,
}

/// Error produced while parsing or validating arguments.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ArgError(pub String);

impl fmt::Display for ArgError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for ArgError {}

impl Args {
    /// Parses `--key value` pairs and positionals from raw arguments.
    pub fn parse<I: IntoIterator<Item = String>>(raw: I) -> Result<Self, ArgError> {
        let mut args = Args::default();
        let mut iter = raw.into_iter();
        while let Some(token) = iter.next() {
            if let Some(key) = token.strip_prefix("--") {
                let value = iter
                    .next()
                    .ok_or_else(|| ArgError(format!("--{key} expects a value")))?;
                if args.flags.insert(key.to_owned(), value).is_some() {
                    return Err(ArgError(format!("--{key} given twice")));
                }
            } else {
                args.positionals.push(token);
            }
        }
        Ok(args)
    }

    /// Positional arguments in order.
    #[allow(dead_code)] // used by tests and future subcommands
    pub fn positionals(&self) -> &[String] {
        &self.positionals
    }

    /// A required string flag.
    pub fn required(&self, key: &str) -> Result<&str, ArgError> {
        self.flags
            .get(key)
            .map(String::as_str)
            .ok_or_else(|| ArgError(format!("missing required flag --{key}")))
    }

    /// An optional string flag.
    pub fn optional(&self, key: &str) -> Option<&str> {
        self.flags.get(key).map(String::as_str)
    }

    /// A typed flag with a default.
    pub fn get_or<T: std::str::FromStr>(&self, key: &str, default: T) -> Result<T, ArgError> {
        match self.flags.get(key) {
            None => Ok(default),
            Some(raw) => raw
                .parse()
                .map_err(|_| ArgError(format!("--{key}: cannot parse {raw:?}"))),
        }
    }

    /// A required typed flag.
    #[allow(dead_code)] // used by tests and future subcommands
    pub fn get<T: std::str::FromStr>(&self, key: &str) -> Result<T, ArgError> {
        let raw = self.required(key)?;
        raw.parse()
            .map_err(|_| ArgError(format!("--{key}: cannot parse {raw:?}")))
    }

    /// Rejects flags outside `allowed` (typo protection).
    pub fn check_known(&self, allowed: &[&str]) -> Result<(), ArgError> {
        for key in self.flags.keys() {
            if !allowed.contains(&key.as_str()) {
                return Err(ArgError(format!(
                    "unknown flag --{key} (expected one of: {})",
                    allowed
                        .iter()
                        .map(|a| format!("--{a}"))
                        .collect::<Vec<_>>()
                        .join(", ")
                )));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(tokens: &[&str]) -> Result<Args, ArgError> {
        Args::parse(tokens.iter().map(|s| (*s).to_owned()))
    }

    #[test]
    fn parses_flags_and_positionals() {
        let a = parse(&["gen", "--routes", "100", "fib", "--seed", "7"]).unwrap();
        assert_eq!(a.positionals(), ["gen", "fib"]);
        assert_eq!(a.get::<usize>("routes").unwrap(), 100);
        assert_eq!(a.get::<u64>("seed").unwrap(), 7);
    }

    #[test]
    fn missing_value_is_an_error() {
        assert!(parse(&["--routes"]).is_err());
    }

    #[test]
    fn duplicate_flag_is_an_error() {
        assert!(parse(&["--a", "1", "--a", "2"]).is_err());
    }

    #[test]
    fn defaults_and_required() {
        let a = parse(&["--x", "5"]).unwrap();
        assert_eq!(a.get_or("x", 0usize).unwrap(), 5);
        assert_eq!(a.get_or("y", 9usize).unwrap(), 9);
        assert!(a.required("z").is_err());
        assert!(a.get::<usize>("missing").is_err());
    }

    #[test]
    fn bad_type_is_an_error() {
        let a = parse(&["--x", "abc"]).unwrap();
        assert!(a.get::<usize>("x").is_err());
        assert!(a.get_or("x", 1usize).is_err());
    }

    #[test]
    fn unknown_flag_detection() {
        let a = parse(&["--good", "1", "--bad", "2"]).unwrap();
        assert!(a.check_known(&["good"]).is_err());
        assert!(a.check_known(&["good", "bad"]).is_ok());
    }
}
