//! `clue` — command-line front end for the CLUE reproduction.
//!
//! ```text
//! clue gen-fib      --out fib.txt [--routes N] [--seed S] [--next-hops K]
//! clue gen-packets  --fib fib.txt --out trace.txt [--count N] [--seed S] [--zipf X]
//! clue gen-updates  --fib fib.txt --out updates.txt [--count N] [--seed S]
//! clue compress     --fib fib.txt [--algorithm onrtc|ortc|leaf-push] [--out out.txt]
//! clue partition    --fib fib.txt [--scheme clue|subtree|idbit] [--n N]
//! clue simulate     --fib fib.txt --packets trace.txt [--chips N] [--dred N]
//!                   [--fifo N] [--service N] [--scheme clue|clpl] [--adversarial true]
//! clue replay       --fib fib.txt --updates updates.txt [--pipeline clue|clpl] [--window N]
//! clue replay       --data-dir DIR [--json true]   (journal inspection: snapshot + WAL records)
//! clue trace gen    --out-rib rib.mrt --out-updates upd.mrt [--seed S] [--routes N]
//!                   [--updates N]             (canonical MRT fixtures, round-trip verified)
//! clue trace info   --scenario NAME | --rib rib.mrt [--updates-mrt upd.mrt]
//!                   [--seed S] [--routes N] [--updates N] [--packets N]
//!                   [--export-fib F] [--export-updates F] [--export-packets F]
//! clue trace replay --scenario NAME | --rib rib.mrt --updates-mrt upd.mrt
//!                   [--speed X] [--addr HOST:PORT] [--workers N] [--dred N] [--batch K]
//! clue serve        --fib fib.txt --packets trace.txt --updates updates.txt [--workers N]
//!                   [--dred N] [--fifo N] [--batch K] [--queue N] [--overflow block|drop]
//!                   [--stats-ms N] [--backend tcam|trie|cfib|tiled]
//! clue serve        --fib fib.txt --listen ADDR [--data-dir DIR] [--workers N] [--dred N]
//!                   [--fifo N] [--batch K] [--queue N] [--overflow block|drop] [--stats-ms N]
//!                   [--transport threads|evloop]
//! clue serve        --listen ADDR --data-dir DIR --repl-listen ADDR [--fib fib.txt]
//!                   [--sync-ms N] [router flags]   (shard primary: WAL-shipping replication)
//! clue serve        --listen ADDR --follow PRIMARY_REPL [router flags]   (warm standby)
//! clue shardmap     --fib fib.txt --shards a,b,c [--standbys x,y,z] [--out map.bin]
//!                   [--split-dir DIR]          (derive cuts, write map + per-shard FIBs)
//! clue proxy        --map map.bin | --fib fib.txt --shards a,b,c [--standbys x,y,z]
//!                   [--listen ADDR] [--heartbeat-ms N] [--fail-after N] [--stats-ms N]
//!                   [--transport threads|evloop] [--bridge-threads N]
//! clue promote      --addr HOST:PORT           (promote a standby to a serving primary)
//! clue snapshot     --data-dir DIR            (fold the journal into a snapshot, prune WAL)
//! clue restore      --data-dir DIR [--fib out.txt] [--verify-fib fib.txt
//!                   --verify-updates updates.txt]
//! clue loadgen      --addr HOST:PORT [--packets trace.txt] [--updates updates.txt]
//!                   [--scenario NAME] [--seed S] [--routes N]
//!                   [--rate PPS] [--update-rate UPS] [--threads N]
//!                   [--lookup-batch K] [--update-batch K]
//!                   [--connections N]         (swarm mode: N concurrent reactor clients)
//! clue stats        --addr HOST:PORT
//! clue check        [--seed S] [--updates N] [--routes N] [--batch K] [--chips N]
//!                   [--dred N] [--packets N] [--faults on|off] [--fault-seed S]
//!                   [--net on|off] [--recovery on|off] [--shards N] [--scenario NAME]
//!                   [--backend tcam|trie|cfib|tiled] [--transport threads|evloop]
//!                   [--out repro.txt] [--replay repro.txt]
//! ```
//!
//! All file formats are plain text: FIBs are `a.b.c.d/len nh` lines,
//! packet traces are one dotted-quad address per line, update traces are
//! `A prefix nh` / `W prefix` lines.

mod args;

use std::process::ExitCode;

use args::{ArgError, Args};

use clue::cluster::{
    rpc, Primary, PrimaryConfig, Proxy, ProxyConfig, ReplConfig, ShardMap, ShardSpec, Standby,
    StandbyConfig, StandbyOutcome,
};
use clue::compress::{compress_with_stats, leaf_push, onrtc, ortc};
use clue::core::engine::{Engine, EngineConfig};
use clue::core::update_pipeline::{mean_ttf, ClplPipeline, CluePipeline, TtfSample};
use clue::core::{BackendKind, DredConfig};
use clue::fib::gen::FibGen;
use clue::fib::{RouteTable, Update};
use clue::net::signal;
use clue::net::wire;
use clue::net::{
    run_load, run_swarm, ClientConfig, Connection, Frame, FrameType, LoadConfig, Server,
    ServerConfig, SwarmConfig, Transport,
};
use clue::oracle::harness;
use clue::oracle::{run_check, run_scenario_check, CheckConfig, Reproducer};
use clue::partition::{
    EvenRangePartition, IdBitPartition, Indexer, PartitionStats, SubTreePartition,
};
use clue::router::{FaultPlan, OverflowPolicy, RouterConfig, RouterService};
use clue::store::{Store, StoreConfig};
use clue::trace::{
    parse_rib, parse_updates, MrtRib, MrtUpdates, Scenario, ScenarioConfig, ScenarioKind,
    UpdateTrace,
};
use clue::traffic::workload::{adversarial_mapping, profile};
use clue::traffic::{PacketGen, UpdateGen};

const USAGE: &str = "\
usage: clue <command> [flags]

commands:
  gen-fib       generate a synthetic FIB            (--out; --routes --seed --next-hops)
  gen-packets   generate a packet trace             (--fib --out; --count --seed --zipf)
  gen-updates   generate a BGP update trace         (--fib --out; --count --seed)
  compress      compress a FIB                      (--fib; --algorithm --out)
  partition     partition a FIB and report shape    (--fib; --scheme --n)
  simulate      run the parallel lookup engine      (--fib --packets; --chips --dred
                                                     --fifo --service --scheme --adversarial)
  replay        replay updates through a pipeline   (--fib --updates; --pipeline --window)
                or inspect a data dir's journal     (--data-dir; --json)
  trace         MRT fixtures and named scenarios    (gen|info|replay; --scenario --rib
                generate round-trip-verified MRT,    --updates-mrt --out-rib --out-updates
                describe/export a workload, or       --seed --routes --updates --packets
                replay it offline or over the wire   --speed --addr --workers --dred --batch
                                                     --export-fib --export-updates
                                                     --export-packets)
  serve         run the live concurrent router      (--fib --packets --updates; --workers
                file-driven, or networked           --dred --fifo --batch --queue
                with --listen HOST:PORT,             --overflow --stats-ms --listen
                durable with --data-dir DIR,         --data-dir --repl-listen --sync-ms
                a shard primary with --repl-listen,  --follow --backend --transport)
                or a warm standby with --follow
  shardmap      derive a shard map from a FIB's     (--fib --shards; --standbys --out
                even-range cuts, optionally          --split-dir)
                splitting per-shard FIBs
  proxy         front N shards as one router with   (--map or --fib --shards --standbys;
                fan-out, health checks, and          --listen --heartbeat-ms --fail-after
                standby failover                     --stats-ms --transport --bridge-threads)
  promote       promote a standby to serving        (--addr)
  snapshot      fold a data dir's journal into a    (--data-dir)
                fresh snapshot and prune the WAL
  restore       recover a data dir offline and      (--data-dir; --fib --verify-fib
                report/export/verify the state       --verify-updates)
  loadgen       offer a workload to a server        (--addr; --packets --updates --scenario
                over TCP at a target rate, or        --seed --routes --rate --update-rate
                swarm N concurrent connections       --threads --lookup-batch --update-batch
                                                     --connections)
  stats         query a running server's counters   (--addr)
  check         differential conformance check      (--seed --updates --routes --batch
                against the naive oracle, or a       --chips --dred --packets --faults
                named adversarial scenario with      --fault-seed --net --recovery
                --scenario (update-storm,            --shards --scenario --backend
                withdraw-flood, flap-storm,          --transport --out --replay)
                ddos-skew, mrt-replay)

run `clue <command> --help` semantics: every flag is `--key value`.";

fn main() -> ExitCode {
    // Register the tiled lookup backend so every `--backend tiled` path
    // (serve, check, loadgen, replay) can compile planes for it.
    clue_tile::install();
    let mut raw: Vec<String> = std::env::args().skip(1).collect();
    if raw.first().map(String::as_str) == Some("--help") || raw.is_empty() {
        println!("{USAGE}");
        return ExitCode::SUCCESS;
    }
    let command = raw.remove(0);
    let result = Args::parse(raw).and_then(|args| dispatch(&command, &args));
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("clue {command}: {e}");
            eprintln!("{USAGE}");
            ExitCode::FAILURE
        }
    }
}

fn dispatch(command: &str, args: &Args) -> Result<(), ArgError> {
    match command {
        "gen-fib" => gen_fib(args),
        "gen-packets" => gen_packets(args),
        "gen-updates" => gen_updates(args),
        "compress" => compress(args),
        "partition" => partition(args),
        "simulate" => simulate(args),
        "replay" => replay(args),
        "trace" => trace_cmd(args),
        "serve" => serve(args),
        "shardmap" => shardmap(args),
        "proxy" => proxy(args),
        "promote" => promote(args),
        "snapshot" => snapshot(args),
        "restore" => restore(args),
        "loadgen" => loadgen(args),
        "stats" => stats(args),
        "check" => check(args),
        other => Err(ArgError(format!("unknown command {other:?}"))),
    }
}

fn io_err(context: &str, e: &std::io::Error) -> ArgError {
    ArgError(format!("{context}: {e}"))
}

fn load_fib(path: &str) -> Result<RouteTable, ArgError> {
    let text = std::fs::read_to_string(path).map_err(|e| io_err(path, &e))?;
    RouteTable::from_text(&text).map_err(|e| ArgError(format!("{path}: {e}")))
}

fn write_file(path: &str, contents: &str) -> Result<(), ArgError> {
    std::fs::write(path, contents).map_err(|e| io_err(path, &e))
}

fn gen_fib(args: &Args) -> Result<(), ArgError> {
    args.check_known(&["out", "routes", "seed", "next-hops"])?;
    let out = args.required("out")?;
    let routes: usize = args.get_or("routes", 100_000)?;
    let seed: u64 = args.get_or("seed", 1)?;
    let next_hops: u16 = args.get_or("next-hops", 24)?;
    let fib = FibGen::new(seed)
        .routes(routes)
        .next_hops(next_hops)
        .generate();
    write_file(out, &fib.to_text())?;
    println!("wrote {} routes to {out}", fib.len());
    Ok(())
}

fn gen_packets(args: &Args) -> Result<(), ArgError> {
    args.check_known(&["fib", "out", "count", "seed", "zipf"])?;
    let fib = load_fib(args.required("fib")?)?;
    let out = args.required("out")?;
    let count: usize = args.get_or("count", 1_000_000)?;
    let seed: u64 = args.get_or("seed", 2)?;
    let zipf: f64 = args.get_or("zipf", 1.1)?;
    let trace = PacketGen::new(seed)
        .zipf_exponent(zipf)
        .generate(&fib, count);
    let mut text = String::with_capacity(count * 16);
    for addr in trace {
        let o = addr.to_be_bytes();
        text.push_str(&format!("{}.{}.{}.{}\n", o[0], o[1], o[2], o[3]));
    }
    write_file(out, &text)?;
    println!("wrote {count} packets to {out}");
    Ok(())
}

fn gen_updates(args: &Args) -> Result<(), ArgError> {
    args.check_known(&["fib", "out", "count", "seed"])?;
    let fib = load_fib(args.required("fib")?)?;
    let out = args.required("out")?;
    let count: usize = args.get_or("count", 10_000)?;
    let seed: u64 = args.get_or("seed", 3)?;
    let updates = UpdateGen::new(seed).generate(&fib, count);
    let mut text = String::with_capacity(count * 24);
    for u in &updates {
        text.push_str(&u.to_string());
        text.push('\n');
    }
    write_file(out, &text)?;
    println!("wrote {count} updates to {out}");
    Ok(())
}

fn compress(args: &Args) -> Result<(), ArgError> {
    args.check_known(&["fib", "algorithm", "out"])?;
    let fib = load_fib(args.required("fib")?)?;
    let algorithm = args.optional("algorithm").unwrap_or("onrtc");
    let (result, label) = match algorithm {
        "onrtc" => {
            let (out, stats) = compress_with_stats(&fib);
            println!(
                "onrtc: {} -> {} entries ({:.2}% of input) in {:.1} ms",
                stats.original,
                stats.compressed,
                stats.ratio() * 100.0,
                stats.millis
            );
            (out, "non-overlapping")
        }
        "leaf-push" => {
            let out = leaf_push(&fib);
            println!(
                "leaf-push: {} -> {} entries ({:.2}% of input)",
                fib.len(),
                out.len(),
                out.len() as f64 / fib.len() as f64 * 100.0
            );
            (out, "leaf-pushed")
        }
        "ortc" => {
            let t = ortc(&fib);
            println!(
                "ortc: {} -> {} entries ({:.2}% of input; {} explicit-miss)",
                fib.len(),
                t.len(),
                t.len() as f64 / fib.len() as f64 * 100.0,
                t.miss_entries()
            );
            // ORTC output may carry miss entries; only forwarding
            // entries can be exported as a plain FIB.
            let forwarding: RouteTable = t
                .entries()
                .iter()
                .filter_map(|&(p, a)| a.map(|nh| clue::fib::Route::new(p, nh)))
                .collect();
            if args.optional("out").is_some() && t.miss_entries() > 0 {
                return Err(ArgError(
                    "ortc output contains explicit-miss entries; it cannot be \
                     exported as a plain FIB (use onrtc instead)"
                        .to_owned(),
                ));
            }
            (forwarding, "ortc")
        }
        other => {
            return Err(ArgError(format!(
                "unknown algorithm {other:?} (onrtc|ortc|leaf-push)"
            )))
        }
    };
    if let Some(out) = args.optional("out") {
        write_file(out, &result.to_text())?;
        println!("wrote {label} table ({} entries) to {out}", result.len());
    }
    Ok(())
}

fn partition(args: &Args) -> Result<(), ArgError> {
    args.check_known(&["fib", "scheme", "n"])?;
    let fib = load_fib(args.required("fib")?)?;
    let scheme = args.optional("scheme").unwrap_or("clue");
    let n: usize = args.get_or("n", 4)?;
    if n == 0 {
        return Err(ArgError("--n must be positive".into()));
    }
    let stats = match scheme {
        "clue" => {
            let compressed = onrtc(&fib);
            println!(
                "compressing first: {} -> {} entries",
                fib.len(),
                compressed.len()
            );
            let p = EvenRangePartition::split(&compressed, n);
            PartitionStats::measure(p.buckets(), compressed.len())
        }
        "subtree" => {
            let p = SubTreePartition::split(&fib, fib.len().div_ceil(n));
            PartitionStats::measure(p.buckets(), fib.len())
        }
        "idbit" => {
            let k = n.next_power_of_two().trailing_zeros();
            if 1usize << k != n {
                return Err(ArgError("idbit needs --n to be a power of two".into()));
            }
            let p = IdBitPartition::split(&fib, k, 16);
            PartitionStats::measure(p.buckets(), fib.len())
        }
        other => {
            return Err(ArgError(format!(
                "unknown scheme {other:?} (clue|subtree|idbit)"
            )))
        }
    };
    println!(
        "{scheme}: {} buckets | max {} min {} | total {} | redundancy {} | imbalance {:.3}",
        stats.buckets,
        stats.max,
        stats.min,
        stats.total,
        stats.redundancy,
        stats.imbalance()
    );
    Ok(())
}

fn load_packets(path: &str) -> Result<Vec<u32>, ArgError> {
    let text = std::fs::read_to_string(path).map_err(|e| io_err(path, &e))?;
    let mut out = Vec::new();
    for (lineno, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut addr: u32 = 0;
        let mut octets = 0;
        for part in line.split('.') {
            let o: u8 = part
                .parse()
                .map_err(|_| ArgError(format!("{path}:{}: bad address", lineno + 1)))?;
            addr = (addr << 8) | u32::from(o);
            octets += 1;
        }
        if octets != 4 {
            return Err(ArgError(format!("{path}:{}: bad address", lineno + 1)));
        }
        out.push(addr);
    }
    Ok(out)
}

fn simulate(args: &Args) -> Result<(), ArgError> {
    args.check_known(&[
        "fib",
        "packets",
        "chips",
        "dred",
        "fifo",
        "service",
        "scheme",
        "adversarial",
        "buckets",
    ])?;
    let fib = load_fib(args.required("fib")?)?;
    let trace = load_packets(args.required("packets")?)?;
    let cfg = EngineConfig {
        chips: args.get_or("chips", 4)?,
        fifo_capacity: args.get_or("fifo", 256)?,
        service_clocks: args.get_or("service", 4)?,
        arrival_period: 1,
        update_stall: None,
    };
    let dred: usize = args.get_or("dred", 1024)?;
    let buckets_n: usize = args.get_or("buckets", cfg.chips * 8)?;
    let adversarial: bool = args.get_or("adversarial", false)?;
    let scheme = args.optional("scheme").unwrap_or("clue");

    let compressed = onrtc(&fib);
    println!(
        "compressed {} -> {} entries; {} chips x {} buckets",
        fib.len(),
        compressed.len(),
        cfg.chips,
        buckets_n
    );
    let parts = EvenRangePartition::split(&compressed, buckets_n);
    let (buckets, index) = parts.into_parts();
    let mapping = if adversarial {
        let counts = profile(&trace, buckets_n, |a| index.bucket_of(a));
        adversarial_mapping(&counts, cfg.chips)
    } else {
        (0..buckets_n).map(|b| b * cfg.chips / buckets_n).collect()
    };
    let dred_cfg = match scheme {
        "clue" => DredConfig::Clue {
            capacity: dred,
            exclude_home: true,
        },
        "clpl" => DredConfig::Clpl {
            capacity: dred,
            sram_trie: fib.to_trie(),
        },
        other => return Err(ArgError(format!("unknown scheme {other:?} (clue|clpl)"))),
    };
    let mut engine = Engine::from_buckets(
        &buckets,
        move |a| index.bucket_of(a),
        mapping,
        dred_cfg,
        cfg,
    );
    let (report, _) = engine.run(&trace);
    println!(
        "completed {} of {} ({} dropped) in {} clocks",
        report.completions, report.arrivals, report.drops, report.clocks
    );
    println!(
        "speedup {:.2}x | DRed hit rate {:.2}% | diversions {} | out-of-order {} | reorder depth {}",
        report.speedup(cfg.service_clocks),
        report.scheme.hit_rate() * 100.0,
        report.diversions,
        report.out_of_order,
        report.reorder_high_water,
    );
    println!(
        "per-chip load: {:?}",
        report
            .chip_shares()
            .iter()
            .map(|s| format!("{:.1}%", s * 100.0))
            .collect::<Vec<_>>()
    );
    println!(
        "control-plane interactions: {} | SRAM accesses: {}",
        report.scheme.control_plane_interactions, report.scheme.sram_accesses
    );
    Ok(())
}

fn load_updates(path: &str) -> Result<Vec<Update>, ArgError> {
    let text = std::fs::read_to_string(path).map_err(|e| io_err(path, &e))?;
    let mut updates = Vec::new();
    for (lineno, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let u: Update = line
            .parse()
            .map_err(|_| ArgError(format!("{path}:{}: bad update", lineno + 1)))?;
        updates.push(u);
    }
    Ok(updates)
}

fn replay(args: &Args) -> Result<(), ArgError> {
    args.check_known(&[
        "fib", "updates", "pipeline", "window", "chips", "dred", "data-dir", "json",
    ])?;
    if let Some(dir) = args.optional("data-dir") {
        return replay_journal(dir, args.get_or("json", false)?);
    }
    if args.optional("json").is_some() {
        return Err(ArgError(
            "--json applies to --data-dir journal inspection".into(),
        ));
    }
    let fib = load_fib(args.required("fib")?)?;
    let updates = load_updates(args.required("updates")?)?;
    let window: usize = args.get_or("window", 1_000)?;
    if window == 0 {
        return Err(ArgError("--window must be positive".into()));
    }
    let chips: usize = args.get_or("chips", 4)?;
    let dred: usize = args.get_or("dred", 1024)?;
    let pipeline = args.optional("pipeline").unwrap_or("clue");

    println!(
        "replaying {} updates through the {pipeline} pipeline ({} windows)",
        updates.len(),
        updates.len().div_ceil(window)
    );
    println!(
        "{:>7} {:>12} {:>12} {:>12} {:>12}",
        "window", "ttf1(us)", "ttf2(us)", "ttf3(us)", "total(us)"
    );
    let mut all: Vec<TtfSample> = Vec::new();
    let mut apply: Box<dyn FnMut(Update) -> TtfSample> = match pipeline {
        "clue" => {
            let mut p = CluePipeline::new(&fib, chips, dred, fib.len());
            Box::new(move |u| p.apply(u))
        }
        "clpl" => {
            let mut p = ClplPipeline::new(&fib, chips, dred, fib.len());
            Box::new(move |u| p.apply(u))
        }
        other => return Err(ArgError(format!("unknown pipeline {other:?} (clue|clpl)"))),
    };
    for (i, chunk) in updates.chunks(window).enumerate() {
        let samples: Vec<TtfSample> = chunk.iter().map(|&u| apply(u)).collect();
        let m = mean_ttf(&samples);
        println!(
            "{:>7} {:>12.4} {:>12.4} {:>12.4} {:>12.4}",
            i,
            m.ttf1_ns / 1e3,
            m.ttf2_ns / 1e3,
            m.ttf3_ns / 1e3,
            m.total_ns() / 1e3
        );
        all.extend(samples);
    }
    let m = mean_ttf(&all);
    println!(
        "\nmean TTF {:.4} us (trie {:.4} + tcam {:.4} + dred {:.4}) over {} updates",
        m.total_ns() / 1e3,
        m.ttf1_ns / 1e3,
        m.ttf2_ns / 1e3,
        m.ttf3_ns / 1e3,
        all.len()
    );
    Ok(())
}

/// Parses `--backend tcam|trie|cfib|tiled` (default: the TCAM sim).
fn parse_backend(args: &Args) -> Result<BackendKind, ArgError> {
    match args.optional("backend") {
        None => Ok(BackendKind::default()),
        Some(name) => name.parse().map_err(|e| ArgError(format!("{e}"))),
    }
}

/// Parses `--transport threads|evloop` (default: per-connection threads).
fn parse_transport(args: &Args) -> Result<Transport, ArgError> {
    match args.optional("transport") {
        None => Ok(Transport::default()),
        Some(name) => name.parse().map_err(ArgError),
    }
}

fn serve(args: &Args) -> Result<(), ArgError> {
    args.check_known(&[
        "fib",
        "packets",
        "updates",
        "workers",
        "dred",
        "fifo",
        "batch",
        "queue",
        "overflow",
        "stats-ms",
        "listen",
        "data-dir",
        "repl-listen",
        "follow",
        "sync-ms",
        "backend",
        "transport",
    ])?;
    let overflow = match args.optional("overflow").unwrap_or("block") {
        "block" => OverflowPolicy::Block,
        "drop" => OverflowPolicy::DropNewest,
        other => return Err(ArgError(format!("unknown overflow {other:?} (block|drop)"))),
    };
    let stats_ms: u64 = args.get_or("stats-ms", 0)?;
    let backend = parse_backend(args)?;
    let transport = parse_transport(args)?;
    let cfg = RouterConfig {
        workers: args.get_or("workers", 4)?,
        fifo_capacity: args.get_or("fifo", 256)?,
        dred_capacity: args.get_or("dred", 1024)?,
        batch_size: args.get_or("batch", 64)?,
        update_queue: args.get_or("queue", 1024)?,
        overflow,
        snapshot_every: (stats_ms > 0).then(|| std::time::Duration::from_millis(stats_ms)),
        faults: None,
        backend,
    };
    if cfg.workers == 0
        || cfg.fifo_capacity == 0
        || cfg.dred_capacity == 0
        || cfg.batch_size == 0
        || cfg.update_queue == 0
    {
        return Err(ArgError("all sizes must be positive".into()));
    }
    if let Some(primary_repl) = args.optional("follow") {
        for bad in [
            "fib",
            "packets",
            "updates",
            "data-dir",
            "repl-listen",
            "sync-ms",
        ] {
            if args.optional(bad).is_some() {
                return Err(ArgError(format!(
                    "--follow conflicts with --{bad} (a standby mirrors its primary's state)"
                )));
            }
        }
        if args.optional("transport").is_some() {
            return Err(ArgError(
                "--transport applies to a serving endpoint, not a standby follower".into(),
            ));
        }
        let listen = args.required("listen")?;
        return serve_follow(listen, primary_repl, cfg, stats_ms);
    }
    if let Some(repl_listen) = args.optional("repl-listen") {
        let listen = args.optional("listen").ok_or_else(|| {
            ArgError("--repl-listen needs --listen (the client/proxy-facing address)".into())
        })?;
        let dir = args.optional("data-dir").ok_or_else(|| {
            ArgError("--repl-listen needs --data-dir (a replicated ack implies journaled)".into())
        })?;
        let fib = match args.optional("fib") {
            Some(path) => Some(load_fib(path)?),
            None => None,
        };
        let sync_ms: u64 = args.get_or("sync-ms", 2_000)?;
        return serve_primary(
            fib.as_ref(),
            listen,
            repl_listen,
            dir,
            cfg,
            stats_ms,
            sync_ms,
            transport,
        );
    }
    if args.optional("sync-ms").is_some() {
        return Err(ArgError(
            "--sync-ms applies only to a shard primary (--repl-listen)".into(),
        ));
    }
    if let Some(listen) = args.optional("listen") {
        // With --data-dir an existing directory's state wins and --fib
        // is only needed (and only read) to seed a fresh one.
        let fib = match args.optional("fib") {
            Some(path) => Some(load_fib(path)?),
            None => None,
        };
        return serve_net(
            fib.as_ref(),
            listen,
            args.optional("data-dir"),
            cfg,
            stats_ms,
            transport,
        );
    }
    if args.optional("data-dir").is_some() {
        return Err(ArgError(
            "--data-dir needs --listen (durability belongs to the live server)".into(),
        ));
    }
    let fib = load_fib(args.required("fib")?)?;
    let packets = load_packets(args.required("packets")?)?;
    let updates = load_updates(args.required("updates")?)?;

    println!(
        "serving {} packets + {} updates over {} workers (batch {}, queue {}, {:?})",
        packets.len(),
        updates.len(),
        cfg.workers,
        cfg.batch_size,
        cfg.update_queue,
        cfg.overflow,
    );
    let report = clue::router::run(&fib, &packets, &updates, &cfg);
    let s = &report.snapshot;
    println!(
        "completed {}/{} lookups in {:.1} ms ({:.0} pps) | epochs {} | dynamic redundancy {}",
        s.completions,
        s.arrivals,
        report.elapsed.as_secs_f64() * 1e3,
        s.completions as f64 / report.elapsed.as_secs_f64().max(1e-9),
        s.epochs,
        report.dynamic_redundancy,
    );
    println!(
        "updates: {} received, {} applied, {:.1}% coalesced away, {} dropped | final table {} -> {} compressed",
        s.updates_received,
        s.updates_applied,
        s.coalesce_ratio * 100.0,
        s.update_drops,
        report.final_table.len(),
        report.final_compressed.len(),
    );
    println!("{}", s.to_json());
    Ok(())
}

/// The networked `serve` path: bind a TCP endpoint, bridge connections
/// into the router runtime, and drain gracefully on SIGINT/SIGTERM. The
/// final stats snapshot is always printed, even on an interrupted run.
/// With `data_dir`, the router journals every batch into a `clue-store`
/// data directory and boots from whatever state that directory already
/// holds (acks then wait for the journal write — see DESIGN.md §2.11).
fn serve_net(
    fib: Option<&RouteTable>,
    listen: &str,
    data_dir: Option<&str>,
    mut router: RouterConfig,
    stats_ms: u64,
    transport: Transport,
) -> Result<(), ArgError> {
    // Periodic reporting in network mode goes through the combined
    // uptime/router/net JSON below, not the runtime's own printer.
    router.snapshot_every = None;
    let scfg = ServerConfig {
        listen: listen.to_owned(),
        router,
        transport,
        ..ServerConfig::default()
    };
    let (server, routes) = match data_dir {
        None => {
            let fib = fib.ok_or_else(|| ArgError("missing required flag --fib".into()))?;
            let server = Server::start(fib, &scfg).map_err(|e| io_err(listen, &e))?;
            (server, fib.len())
        }
        Some(dir) => {
            let (mut store, recovery) =
                Store::open(std::path::Path::new(dir), StoreConfig::default())
                    .map_err(|e| io_err(dir, &e))?;
            match recovery {
                Some(rec) => {
                    if fib.is_some() {
                        eprintln!("clue serve: {dir} already holds state; ignoring --fib");
                    }
                    println!(
                        "recovered {} routes from {dir}: epoch {}, seq high-water {}, \
                         {} journal records replayed{}{}",
                        rec.table.len(),
                        rec.epoch,
                        rec.seq_hw,
                        rec.replayed,
                        if rec.truncated {
                            " (torn tail skipped)"
                        } else {
                            ""
                        },
                        if rec.snapshots_skipped > 0 {
                            " (corrupt snapshot skipped)"
                        } else {
                            ""
                        },
                    );
                    let routes = rec.table.len();
                    let initial_seq = rec.seq_hw;
                    let state = rec.into_state();
                    let svc =
                        RouterService::start_recovered(&state, &scfg.router, Some(Box::new(store)));
                    let server = Server::start_with_service(svc, initial_seq, &scfg)
                        .map_err(|e| io_err(listen, &e))?;
                    (server, routes)
                }
                None => {
                    let fib = fib.ok_or_else(|| {
                        ArgError(format!("{dir} is a fresh data dir; seed it with --fib"))
                    })?;
                    store
                        .init_from_table(fib, scfg.router.workers)
                        .map_err(|e| io_err(dir, &e))?;
                    println!("seeded {dir} with {} routes (base snapshot 0)", fib.len());
                    let svc = RouterService::start_with_journal(fib, &scfg.router, Box::new(store));
                    let server = Server::start_with_service(svc, 0, &scfg)
                        .map_err(|e| io_err(listen, &e))?;
                    (server, fib.len())
                }
            }
        }
    };
    signal::install();
    println!(
        "listening on {} ({} routes, {} workers, batch {}, queue {}, {:?}); \
         SIGINT/SIGTERM drains",
        server.local_addr(),
        routes,
        scfg.router.workers,
        scfg.router.batch_size,
        scfg.router.update_queue,
        scfg.router.overflow,
    );
    let every = (stats_ms > 0).then(|| std::time::Duration::from_millis(stats_ms));
    let mut last = std::time::Instant::now();
    while !signal::triggered() && !server.shutdown_requested() {
        std::thread::sleep(std::time::Duration::from_millis(25));
        if let Some(every) = every {
            if last.elapsed() >= every {
                println!("{}", server.stats_json());
                last = std::time::Instant::now();
            }
        }
    }
    eprintln!("clue serve: draining (new connections refused, update batches flushing)");
    println!("{}", server.stats_json());
    let report = server.drain().map_err(|e| io_err("drain", &e))?;
    let s = &report.snapshot;
    println!(
        "drained: {} lookups answered, {} updates received ({} applied, {:.1}% coalesced, \
         {} dropped), {} epochs | final table {} -> {} compressed",
        s.completions,
        s.updates_received,
        s.updates_applied,
        s.coalesce_ratio * 100.0,
        s.update_drops,
        s.epochs,
        report.final_table.len(),
        report.final_compressed.len(),
    );
    println!("{}", s.to_json());
    Ok(())
}

/// The shard-primary `serve` path: durable store + replication
/// endpoint + serving frontend, composed by [`Primary`] so a client
/// ack implies journaled *and* applied on every live standby.
#[allow(clippy::too_many_arguments)]
fn serve_primary(
    fib: Option<&RouteTable>,
    listen: &str,
    repl_listen: &str,
    dir: &str,
    mut router: RouterConfig,
    stats_ms: u64,
    sync_ms: u64,
    transport: Transport,
) -> Result<(), ArgError> {
    router.snapshot_every = None;
    let cfg = PrimaryConfig {
        server: ServerConfig {
            listen: listen.to_owned(),
            router,
            transport,
            ..ServerConfig::default()
        },
        repl: ReplConfig {
            listen: repl_listen.to_owned(),
            ..ReplConfig::default()
        },
        store: StoreConfig::default(),
        sync_timeout: std::time::Duration::from_millis(sync_ms.max(1)),
    };
    let primary =
        Primary::start(std::path::Path::new(dir), fib, &cfg).map_err(|e| io_err(listen, &e))?;
    signal::install();
    println!(
        "shard primary on {} ({} routes, {}), shipping WAL on {}; SIGINT/SIGTERM drains",
        primary.local_addr(),
        primary.routes(),
        if primary.recovered() {
            "recovered"
        } else {
            "seeded"
        },
        primary.repl_addr(),
    );
    let every = (stats_ms > 0).then(|| std::time::Duration::from_millis(stats_ms));
    let mut last = std::time::Instant::now();
    while !signal::triggered() && !primary.shutdown_requested() {
        std::thread::sleep(std::time::Duration::from_millis(25));
        if let Some(every) = every {
            if last.elapsed() >= every {
                let r = primary.repl_stats();
                println!(
                    "{{\"repl\":{{\"followers\":{},\"synced\":{},\"base_jseq\":{},\"tail_len\":{}}},\"server\":{}}}",
                    r.followers,
                    r.synced,
                    r.base_jseq,
                    r.tail_len,
                    primary.stats_json(),
                );
                last = std::time::Instant::now();
            }
        }
    }
    eprintln!("clue serve: draining shard primary (journal flush + checkpoint)");
    let report = primary.stop().map_err(|e| io_err("drain", &e))?;
    let s = &report.snapshot;
    println!(
        "drained: {} lookups answered, {} updates received ({} applied, {} dropped), \
         {} epochs | final table {} routes",
        s.completions,
        s.updates_received,
        s.updates_applied,
        s.update_drops,
        s.epochs,
        report.final_table.len(),
    );
    Ok(())
}

/// The warm-standby `serve` path: follow a primary's replication
/// stream, apply-then-ack every record, and reboot as a full server on
/// the same address when promoted (Promote frame or proxy failover).
fn serve_follow(
    listen: &str,
    primary_repl: &str,
    mut router: RouterConfig,
    stats_ms: u64,
) -> Result<(), ArgError> {
    router.snapshot_every = None;
    let standby = Standby::start(StandbyConfig {
        listen: listen.to_owned(),
        primary_repl: primary_repl.to_owned(),
        router,
        ..StandbyConfig::default()
    })
    .map_err(|e| io_err(listen, &e))?;
    signal::install();
    println!(
        "standby on {} following {primary_repl}; promote with `clue promote --addr {}`; \
         SIGINT/SIGTERM stops",
        standby.local_addr(),
        standby.local_addr(),
    );
    let every = (stats_ms > 0).then(|| std::time::Duration::from_millis(stats_ms));
    let mut last = std::time::Instant::now();
    let mut announced = false;
    while !signal::triggered() {
        std::thread::sleep(std::time::Duration::from_millis(25));
        if standby.is_promoted() && !announced {
            announced = true;
            println!(
                "promoted: serving lookups and updates on {}",
                standby.local_addr()
            );
        }
        if let Some(every) = every {
            if last.elapsed() >= every && !standby.is_promoted() {
                let s = standby.replica_state();
                println!(
                    "{{\"role\":\"standby\",\"applied_jseq\":{},\"seq_hw\":{},\"routes\":{},\
                     \"records_applied\":{},\"snapshots_loaded\":{},\"skipped\":{},\
                     \"reconnects\":{}}}",
                    s.applied_jseq.map_or(-1i64, |j| j as i64),
                    s.seq_hw,
                    s.table.len(),
                    s.records_applied,
                    s.snapshots_loaded,
                    s.skipped,
                    s.reconnects,
                );
                last = std::time::Instant::now();
            }
        }
    }
    match standby.stop().map_err(|e| io_err(listen, &e))? {
        StandbyOutcome::Standby(s) => {
            println!(
                "stopped as standby: {} routes mirrored, applied_jseq {}, seq high-water {}, \
                 {} records applied, {} snapshots, {} skipped, {} reconnects",
                s.table.len(),
                s.applied_jseq.map_or(-1i64, |j| j as i64),
                s.seq_hw,
                s.records_applied,
                s.snapshots_loaded,
                s.skipped,
                s.reconnects,
            );
        }
        StandbyOutcome::Promoted(report) => {
            let s = &report.snapshot;
            println!(
                "drained promoted server: {} lookups answered, {} updates applied, {} epochs | \
                 final table {} routes",
                s.completions,
                s.updates_applied,
                s.epochs,
                report.final_table.len(),
            );
        }
    }
    Ok(())
}

/// Parses `--shards a,b,c` (+ optional `--standbys x,y,z`) into
/// per-shard endpoint specs. Shared by `shardmap` and `proxy`.
fn parse_shard_specs(args: &Args) -> Result<Vec<ShardSpec>, ArgError> {
    let split = |raw: &str| -> Vec<String> {
        raw.split(',')
            .map(str::trim)
            .filter(|s| !s.is_empty())
            .map(str::to_owned)
            .collect()
    };
    let primaries = split(args.required("shards")?);
    if primaries.is_empty() {
        return Err(ArgError(
            "--shards needs at least one HOST:PORT endpoint".into(),
        ));
    }
    let standbys = args.optional("standbys").map(split).unwrap_or_default();
    if !standbys.is_empty() && standbys.len() != primaries.len() {
        return Err(ArgError(format!(
            "--standbys lists {} endpoints for {} shards (one per shard, or omit)",
            standbys.len(),
            primaries.len(),
        )));
    }
    Ok(primaries
        .into_iter()
        .enumerate()
        .map(|(i, p)| match standbys.get(i) {
            Some(s) => ShardSpec::with_standby(p, s.clone()),
            None => ShardSpec::primary_only(p),
        })
        .collect())
}

/// `clue shardmap`: derive even-range cuts from a FIB, print the
/// per-shard ranges, and optionally write the versioned map file and
/// per-shard filtered FIBs (to seed each primary's data dir).
fn shardmap(args: &Args) -> Result<(), ArgError> {
    args.check_known(&["fib", "shards", "standbys", "out", "split-dir"])?;
    let fib = load_fib(args.required("fib")?)?;
    let specs = parse_shard_specs(args)?;
    let map = ShardMap::derive(&fib, specs).map_err(|e| io_err("shard map", &e))?;
    for (i, spec) in map.shards().iter().enumerate() {
        let range = map.shard_range(i);
        let sub = map.filter_table(&fib, i);
        println!(
            "shard {i}: {}..{} ({} routes) -> {}{}",
            std::net::Ipv4Addr::from(*range.start()),
            std::net::Ipv4Addr::from(*range.end()),
            sub.len(),
            spec.primary,
            spec.standby
                .as_deref()
                .map(|s| format!(" (standby {s})"))
                .unwrap_or_default(),
        );
    }
    if let Some(out) = args.optional("out") {
        map.write_file(std::path::Path::new(out))
            .map_err(|e| io_err(out, &e))?;
        println!(
            "wrote shard map ({} shards, {} bytes) to {out}",
            map.len(),
            map.encode().len(),
        );
    }
    if let Some(dir) = args.optional("split-dir") {
        std::fs::create_dir_all(dir).map_err(|e| io_err(dir, &e))?;
        for i in 0..map.len() {
            let sub = map.filter_table(&fib, i);
            let path = format!("{dir}/shard{i}.txt");
            write_file(&path, &sub.to_text())?;
            println!("wrote {} routes to {path}", sub.len());
        }
    }
    Ok(())
}

/// `clue proxy`: front N shard primaries as one logical router —
/// range-partitioned fan-out, per-shard health checks, and automatic
/// standby promotion on primary failure.
fn proxy(args: &Args) -> Result<(), ArgError> {
    args.check_known(&[
        "listen",
        "map",
        "fib",
        "shards",
        "standbys",
        "heartbeat-ms",
        "fail-after",
        "stats-ms",
        "transport",
        "bridge-threads",
    ])?;
    let map = match args.optional("map") {
        Some(path) => {
            for bad in ["fib", "shards", "standbys"] {
                if args.optional(bad).is_some() {
                    return Err(ArgError(format!(
                        "--map already carries the cuts and endpoints; drop --{bad}"
                    )));
                }
            }
            ShardMap::read_file(std::path::Path::new(path)).map_err(|e| io_err(path, &e))?
        }
        None => {
            let fib = load_fib(args.required("fib").map_err(|_| {
                ArgError("proxy needs --map FILE, or --fib + --shards to derive one".into())
            })?)?;
            ShardMap::derive(&fib, parse_shard_specs(args)?).map_err(|e| io_err("shard map", &e))?
        }
    };
    let shards = map.len();
    let mut cfg = ProxyConfig::new(map);
    cfg.listen = args.optional("listen").unwrap_or("127.0.0.1:0").to_owned();
    cfg.heartbeat_every = std::time::Duration::from_millis(args.get_or("heartbeat-ms", 150)?);
    cfg.fail_after = args.get_or("fail-after", 2)?;
    if cfg.fail_after == 0 {
        return Err(ArgError("--fail-after must be positive".into()));
    }
    cfg.transport = parse_transport(args)?;
    cfg.bridge_threads = args.get_or("bridge-threads", cfg.bridge_threads)?;
    if cfg.bridge_threads == 0 {
        return Err(ArgError("--bridge-threads must be positive".into()));
    }
    let stats_ms: u64 = args.get_or("stats-ms", 0)?;
    let transport = cfg.transport;
    let listen = cfg.listen.clone();
    let proxy = Proxy::start(cfg).map_err(|e| io_err(&listen, &e))?;
    signal::install();
    println!(
        "proxy on {} ({} transport) fronting {shards} shards; SIGINT/SIGTERM stops",
        proxy.local_addr(),
        transport.name(),
    );
    let every = (stats_ms > 0).then(|| std::time::Duration::from_millis(stats_ms));
    let mut last = std::time::Instant::now();
    while !signal::triggered() {
        std::thread::sleep(std::time::Duration::from_millis(25));
        if let Some(every) = every {
            if last.elapsed() >= every {
                println!("{}", proxy.stats_json());
                last = std::time::Instant::now();
            }
        }
    }
    println!("{}", proxy.stats_json());
    proxy.stop();
    Ok(())
}

/// `clue promote`: ask a standby to take over serving (the manual
/// counterpart of the proxy's automatic failover).
fn promote(args: &Args) -> Result<(), ArgError> {
    args.check_known(&["addr"])?;
    let addr = args.required("addr")?;
    let reply = rpc::call_expect(
        addr,
        &Frame::empty(FrameType::Promote, 0),
        FrameType::PromoteAck,
        std::time::Duration::from_secs(2),
        std::time::Duration::from_secs(10),
    )
    .map_err(|e| io_err(addr, &e))?;
    let seq_hw = wire::decode_u64(&reply.payload).map_err(|e| io_err(addr, &e))?;
    println!("promoted {addr}: serving resumes at seq high-water {seq_hw}");
    Ok(())
}

/// `clue snapshot`: offline compaction — recover a data dir, fold the
/// journal tail into a fresh snapshot, prune the WAL segments.
fn snapshot(args: &Args) -> Result<(), ArgError> {
    args.check_known(&["data-dir"])?;
    let dir = args.required("data-dir")?;
    let (mut store, recovery) = Store::open(std::path::Path::new(dir), StoreConfig::default())
        .map_err(|e| io_err(dir, &e))?;
    let rec =
        recovery.ok_or_else(|| ArgError(format!("{dir} holds no recoverable state to compact")))?;
    println!(
        "recovered {} routes (epoch {}, seq high-water {}, {} journal records replayed{})",
        rec.table.len(),
        rec.epoch,
        rec.seq_hw,
        rec.replayed,
        if rec.truncated {
            "; torn tail skipped"
        } else {
            ""
        },
    );
    store
        .checkpoint_recovery(&rec)
        .map_err(|e| io_err(dir, &e))?;
    println!(
        "checkpointed at journal position {}; WAL pruned",
        store.snapshot_jseq()
    );
    Ok(())
}

/// `clue restore`: offline recovery report. Optionally exports the
/// recovered FIB (`--fib out.txt`) and/or verifies it against a base
/// FIB plus update trace (`--verify-fib`/`--verify-updates`), exiting
/// nonzero on divergence so CI can assert convergence after a crash.
fn restore(args: &Args) -> Result<(), ArgError> {
    args.check_known(&["data-dir", "fib", "verify-fib", "verify-updates"])?;
    let dir = args.required("data-dir")?;
    let (_store, recovery) = Store::open(std::path::Path::new(dir), StoreConfig::default())
        .map_err(|e| io_err(dir, &e))?;
    let rec = recovery.ok_or_else(|| ArgError(format!("{dir} holds no recoverable state")))?;
    println!(
        "{dir}: {} routes | epoch {} | seq high-water {} | raw updates applied {} | \
         snapshot at jseq {} + {} replayed records | truncated tail: {} | \
         corrupt snapshots skipped: {}",
        rec.table.len(),
        rec.epoch,
        rec.seq_hw,
        rec.raw_applied,
        rec.snapshot_jseq,
        rec.replayed,
        rec.truncated,
        rec.snapshots_skipped,
    );
    if let Some(out) = args.optional("fib") {
        write_file(out, &rec.table.to_text())?;
        println!("wrote recovered FIB ({} routes) to {out}", rec.table.len());
    }
    match (args.optional("verify-fib"), args.optional("verify-updates")) {
        (None, None) => {}
        (Some(fib_path), Some(upd_path)) => {
            let mut want = load_fib(fib_path)?;
            let updates = load_updates(upd_path)?;
            let applied = usize::try_from(rec.raw_applied)
                .map_err(|_| ArgError("raw_applied overflows usize".into()))?;
            if applied > updates.len() {
                return Err(ArgError(format!(
                    "data dir absorbed {applied} updates but {upd_path} holds only {}",
                    updates.len()
                )));
            }
            for &u in &updates[..applied] {
                want.apply(u);
            }
            if rec.table != want {
                return Err(ArgError(format!(
                    "recovered table ({} routes) diverges from {fib_path} + first {applied} \
                     updates of {upd_path} ({} routes)",
                    rec.table.len(),
                    want.len()
                )));
            }
            println!(
                "verified: recovered table equals {fib_path} after {applied} of {} updates",
                updates.len()
            );
        }
        _ => {
            return Err(ArgError(
                "--verify-fib and --verify-updates must be given together".into(),
            ))
        }
    }
    Ok(())
}

/// `clue replay --data-dir`: journal inspection — print the base
/// snapshot and every decodable WAL record after it. With `--json
/// true` the same information is emitted as JSON Lines: one
/// `"snapshot"` object, one `"record"` object per WAL record, one
/// `"summary"` object — machine-diffable without scraping the table.
fn replay_journal(dir: &str, json: bool) -> Result<(), ArgError> {
    let path = std::path::Path::new(dir);
    let snaps = clue::store::list_snapshots(path).map_err(|e| io_err(dir, &e))?;
    let mut base = None;
    let mut skipped = 0u64;
    for p in &snaps {
        match clue::store::load_snapshot(p) {
            Ok(s) => {
                base = Some((p, s));
                break;
            }
            Err(_) => skipped += 1,
        }
    }
    let (snap_path, snap) =
        base.ok_or_else(|| ArgError(format!("{dir} holds no valid snapshot")))?;
    let snap_name = snap_path
        .file_name()
        .and_then(|n| n.to_str())
        .unwrap_or("?");
    if json {
        println!(
            "{{\"kind\":\"snapshot\",\"file\":\"{snap_name}\",\"routes\":{},\
             \"compressed\":{},\"epoch\":{},\"seq_hw\":{},\"raw_total\":{},\
             \"chips\":{},\"jseq\":{},\"corrupt_skipped\":{skipped}}}",
            snap.table.len(),
            snap.compressed.len(),
            snap.epoch,
            snap.seq_hw,
            snap.raw_total,
            snap.chips,
            snap.jseq,
        );
    } else {
        println!(
            "{snap_name}: {} routes ({} compressed), epoch {}, seq high-water {}, \
             raw updates {}, {} chips",
            snap.table.len(),
            snap.compressed.len(),
            snap.epoch,
            snap.seq_hw,
            snap.raw_total,
            snap.chips,
        );
        if skipped > 0 {
            println!("({skipped} newer corrupt snapshot(s) skipped)");
        }
    }
    let scan = clue::store::scan_dir(path, snap.jseq).map_err(|e| io_err(dir, &e))?;
    if json {
        for rec in &scan.records {
            println!(
                "{{\"kind\":\"record\",\"jseq\":{},\"epoch\":{},\"seq_hw\":{},\
                 \"raw\":{},\"ops\":{}}}",
                rec.jseq,
                rec.epoch,
                rec.seq_hw,
                rec.raw,
                rec.ops.len()
            );
        }
    } else if !scan.records.is_empty() {
        println!(
            "{:>8} {:>8} {:>10} {:>6} {:>6}",
            "jseq", "epoch", "seq_hw", "raw", "ops"
        );
        for rec in &scan.records {
            println!(
                "{:>8} {:>8} {:>10} {:>6} {:>6}",
                rec.jseq,
                rec.epoch,
                rec.seq_hw,
                rec.raw,
                rec.ops.len()
            );
        }
    }
    let raw: u64 = scan.records.iter().map(|r| u64::from(r.raw)).sum();
    if json {
        println!(
            "{{\"kind\":\"summary\",\"records\":{},\"raw_updates\":{raw},\
             \"truncated\":{}}}",
            scan.records.len(),
            scan.truncated,
        );
    } else {
        println!(
            "{} journal records after the snapshot ({} raw updates){}",
            scan.records.len(),
            raw,
            if scan.truncated {
                "; tail truncated at the last valid record"
            } else {
                ""
            },
        );
    }
    Ok(())
}

fn loadgen(args: &Args) -> Result<(), ArgError> {
    args.check_known(&[
        "addr",
        "packets",
        "updates",
        "scenario",
        "seed",
        "routes",
        "rate",
        "update-rate",
        "threads",
        "lookup-batch",
        "update-batch",
        "connections",
    ])?;
    let addr = args.required("addr")?;
    let (packets, updates) = if let Some(name) = args.optional("scenario") {
        for bad in ["packets", "updates"] {
            if args.optional(bad).is_some() {
                return Err(ArgError(format!(
                    "--{bad} loads a trace file; it conflicts with --scenario"
                )));
            }
        }
        let kind: ScenarioKind = name.parse().map_err(ArgError)?;
        let d = ScenarioConfig::default();
        let cfg = ScenarioConfig {
            seed: args.get_or("seed", d.seed)?,
            routes: args.get_or("routes", d.routes)?,
            ..d
        };
        let s = Scenario::build(kind, &cfg);
        eprintln!(
            "scenario {kind}: {} updates + {} lookups over a {}-route base \
             (install it with `clue trace info --scenario {kind} --export-fib ...`)",
            s.schedule.len(),
            s.packets.len(),
            s.base.len(),
        );
        let ups = s.updates();
        (s.packets, ups)
    } else {
        for bad in ["seed", "routes"] {
            if args.optional(bad).is_some() {
                return Err(ArgError(format!("--{bad} applies to --scenario workloads")));
            }
        }
        let packets = match args.optional("packets") {
            Some(path) => load_packets(path)?,
            None => Vec::new(),
        };
        let updates = match args.optional("updates") {
            Some(path) => load_updates(path)?,
            None => Vec::new(),
        };
        (packets, updates)
    };
    if packets.is_empty() && updates.is_empty() {
        return Err(ArgError(
            "nothing to offer: give --packets, --updates, or --scenario".into(),
        ));
    }
    let connections: usize = args.get_or("connections", 0)?;
    if connections > 0 {
        // Swarm mode: N concurrent connections on one reactor, the
        // whole traces swept once across them.
        for bad in ["rate", "update-rate", "threads"] {
            if args.optional(bad).is_some() {
                return Err(ArgError(format!(
                    "--{bad} applies to the paced load generator, not --connections"
                )));
            }
        }
        let lookup_batch: usize = args.get_or("lookup-batch", 64)?;
        if lookup_batch == 0 {
            return Err(ArgError("all sizes must be positive".into()));
        }
        let cfg = SwarmConfig {
            addr: addr.to_owned(),
            connections,
            lookup_batch,
            rounds: packets.len().div_ceil(connections * lookup_batch),
            updates_per_conn: updates
                .len()
                .div_ceil(connections.max(1))
                .min(updates.len()),
            ..SwarmConfig::default()
        };
        eprintln!(
            "swarming {connections} connections at {addr}: {} lookup rounds x {} addrs, {} updates/conn",
            cfg.rounds, cfg.lookup_batch, cfg.updates_per_conn,
        );
        let report = run_swarm(&cfg, &packets, &updates).map_err(|e| io_err(addr, &e))?;
        println!("{}", report.to_json());
        return Ok(());
    }
    let cfg = LoadConfig {
        client: ClientConfig::to_addr(addr),
        lookup_threads: args.get_or("threads", 2)?,
        lookup_batch: args.get_or("lookup-batch", 64)?,
        update_batch: args.get_or("update-batch", 32)?,
        lookup_rate: args.get_or("rate", 0.0)?,
        update_rate: args.get_or("update-rate", 0.0)?,
    };
    if cfg.lookup_threads == 0 || cfg.lookup_batch == 0 || cfg.update_batch == 0 {
        return Err(ArgError("all sizes must be positive".into()));
    }
    eprintln!(
        "offering {} lookups ({} threads) + {} updates to {addr}",
        packets.len(),
        cfg.lookup_threads,
        updates.len(),
    );
    let report = run_load(&packets, &updates, &cfg).map_err(|e| io_err(addr, &e))?;
    if report.dial_errors > 0 {
        eprintln!(
            "warning: {} worker dial(s) failed; their share of the workload went unoffered",
            report.dial_errors
        );
    }
    println!("{}", report.to_json());
    Ok(())
}

fn stats(args: &Args) -> Result<(), ArgError> {
    args.check_known(&["addr"])?;
    let addr = args.required("addr")?;
    let mut conn =
        Connection::connect(ClientConfig::to_addr(addr)).map_err(|e| io_err(addr, &e))?;
    let json = conn.stats_json().map_err(|e| io_err(addr, &e))?;
    println!("{json}");
    // A human-readable line for the active lookup plane, pulled out of
    // the JSON (the workspace carries no serde; the fields are ours).
    if let Some(plane) = json_object(&json, "\"plane\":") {
        if plane != "null" {
            let field = |key: &str| json_scalar(plane, key).unwrap_or("?");
            let heap: f64 = field("\"heap_bytes\":").parse().unwrap_or(0.0);
            println!(
                "plane: backend={} epoch={} entries={} heap={:.1} KiB replicated={}",
                field("\"backend\":\"").trim_end_matches('"'),
                field("\"epoch\":"),
                field("\"entries\":"),
                heap / 1024.0,
                field("\"replicated\":"),
            );
        }
    }
    let _ = conn.close();
    Ok(())
}

/// Extracts the value following `key` in `json`: a brace-balanced
/// object, or a bare scalar up to the next `,`/`}`.
fn json_object<'a>(json: &'a str, key: &str) -> Option<&'a str> {
    let start = json.find(key)? + key.len();
    let rest = &json[start..];
    if rest.starts_with('{') {
        let mut depth = 0usize;
        for (i, c) in rest.char_indices() {
            match c {
                '{' => depth += 1,
                '}' => {
                    depth -= 1;
                    if depth == 0 {
                        return Some(&rest[..=i]);
                    }
                }
                _ => {}
            }
        }
        None
    } else {
        let end = rest.find([',', '}']).unwrap_or(rest.len());
        Some(&rest[..end])
    }
}

/// Extracts a scalar field (number or string) after `key`.
fn json_scalar<'a>(json: &'a str, key: &str) -> Option<&'a str> {
    let start = json.find(key)? + key.len();
    let rest = &json[start..];
    let end = rest.find([',', '}', '"']).unwrap_or(rest.len());
    Some(&rest[..end])
}

fn check(args: &Args) -> Result<(), ArgError> {
    args.check_known(&[
        "seed",
        "updates",
        "routes",
        "batch",
        "chips",
        "dred",
        "packets",
        "probe-sample",
        "probe-random",
        "faults",
        "fault-seed",
        "net",
        "recovery",
        "shards",
        "scenario",
        "out",
        "replay",
        "backend",
        "transport",
    ])?;
    let seed: u64 = args.get_or("seed", 7)?;
    let updates: usize = args.get_or("updates", 5_000)?;
    let mut cfg = CheckConfig::new(seed, updates);
    cfg.routes = args.get_or("routes", cfg.routes)?;
    cfg.batch = args.get_or("batch", cfg.batch)?;
    cfg.chips = args.get_or("chips", cfg.chips)?;
    cfg.dred_capacity = args.get_or("dred", cfg.dred_capacity)?;
    cfg.packets = args.get_or("packets", cfg.packets)?;
    cfg.probe_sample = args.get_or("probe-sample", cfg.probe_sample)?;
    cfg.probe_random = args.get_or("probe-random", cfg.probe_random)?;
    cfg.faults = match args.optional("faults").unwrap_or("off") {
        "on" => Some(FaultPlan::chaos(args.get_or("fault-seed", seed)?)),
        "off" => None,
        other => return Err(ArgError(format!("unknown faults mode {other:?} (on|off)"))),
    };
    cfg.net = match args.optional("net").unwrap_or("off") {
        "on" => true,
        "off" => false,
        other => return Err(ArgError(format!("unknown net mode {other:?} (on|off)"))),
    };
    cfg.recovery = match args.optional("recovery").unwrap_or("off") {
        "on" => true,
        "off" => false,
        other => {
            return Err(ArgError(format!(
                "unknown recovery mode {other:?} (on|off)"
            )))
        }
    };
    cfg.backend = parse_backend(args)?;
    cfg.transport = parse_transport(args)?;
    cfg.shards = args.get_or("shards", 1)?;
    if cfg.shards == 0 {
        return Err(ArgError(
            "--shards must be at least 1 (2+ runs the cluster phase)".into(),
        ));
    }

    if let Some(path) = args.optional("replay") {
        let text = std::fs::read_to_string(path).map_err(|e| io_err(path, &e))?;
        let repro = Reproducer::from_text(&text).map_err(|e| ArgError(format!("{path}: {e}")))?;
        for line in repro.note.lines() {
            println!("# {line}");
        }
        println!(
            "replaying {} updates on a {}-route table",
            repro.trace.len(),
            repro.table.len()
        );
        return match harness::replay(&repro, &cfg) {
            Ok(()) => {
                println!("reproducer replayed clean — the divergence no longer triggers");
                Ok(())
            }
            Err(d) => Err(ArgError(format!("reproducer still diverges: {d}"))),
        };
    }

    if let Some(name) = args.optional("scenario") {
        return check_scenario(args, &cfg, name);
    }

    println!(
        "conformance check: seed {seed}, {} routes, {updates} updates (batch {}), \
         {} chips, {} packets, faults {}, {} backend (all backends probed)",
        cfg.routes,
        cfg.batch,
        cfg.chips,
        cfg.packets,
        if cfg.faults.is_some() { "on" } else { "off" },
        cfg.backend,
    );
    match run_check(&cfg) {
        Ok(report) => {
            println!(
                "PASS: {} batches checked, {} oracle probes agreed, router converged \
                 over {} epochs ({} packet lookups)",
                report.batches, report.probes, report.router_epochs, report.router_lookups,
            );
            if cfg.net {
                println!(
                    "net phase: {} lookups over loopback TCP, {} reconnects",
                    report.net_lookups, report.net_reconnects,
                );
            }
            if cfg.recovery {
                println!(
                    "recovery phase: {} crash points, {} journal records replayed, \
                     {} boundary probes agreed",
                    report.recovery_crashes, report.recovery_replayed, report.recovery_probes,
                );
            }
            if cfg.shards > 1 {
                println!(
                    "cluster phase: {} shards, {} proxied lookups agreed, {} failover \
                     (zero lost acks), {} convergence probes",
                    report.cluster_shards,
                    report.cluster_lookups,
                    report.cluster_failovers,
                    report.cluster_probes,
                );
            }
            Ok(())
        }
        Err(failure) => {
            eprintln!("FAIL: {}", failure.divergence);
            eprintln!(
                "minimizing a {}-update trace (this re-runs the failing phase)...",
                failure.trace.len()
            );
            let repro = harness::minimize_failure(&failure, &cfg);
            let out = args.optional("out").unwrap_or("clue-reproducer.txt");
            write_file(out, &repro.to_text())?;
            eprintln!(
                "wrote minimized reproducer ({} routes, {} updates) to {out}; \
                 replay it with `clue check --replay {out}`",
                repro.table.len(),
                repro.trace.len()
            );
            Err(ArgError(format!(
                "conformance divergence: {}",
                failure.divergence
            )))
        }
    }
}

/// `clue check --scenario NAME`: the adversarial-scenario phase on its
/// own — sequential differential check on every backend, then a live
/// replay per backend over loopback TCP (and a sharded pass with
/// `--shards N`). Failures minimize into the same reproducer format as
/// the generic check.
fn check_scenario(args: &Args, cfg: &CheckConfig, name: &str) -> Result<(), ArgError> {
    let kind: ScenarioKind = name.parse().map_err(ArgError)?;
    println!(
        "scenario check: {kind}, seed {}, {} routes, ~{} updates (batch {}), \
         {} packets, faults {}, shards {}",
        cfg.seed,
        cfg.routes,
        cfg.updates,
        cfg.batch,
        cfg.packets,
        if cfg.faults.is_some() { "on" } else { "off" },
        cfg.shards,
    );
    match run_scenario_check(cfg, kind) {
        Ok(o) => {
            println!(
                "PASS: {} batches checked, {} oracle probes agreed, {} updates applied",
                o.batches, o.probes, o.applied,
            );
            println!(
                "live replay: {} backend runs, {} wire lookups, {} settled probes, \
                 zero lost acks",
                o.live_runs, o.live_lookups, o.live_probes,
            );
            if o.shards > 0 {
                println!(
                    "sharded replay: {} shards, {} proxied lookups agreed",
                    o.shards, o.shard_lookups,
                );
            }
            Ok(())
        }
        Err(failure) => {
            eprintln!("FAIL: {}", failure.divergence);
            eprintln!(
                "minimizing a {}-update trace (this re-runs the failing phase)...",
                failure.trace.len()
            );
            let repro = harness::minimize_failure(&failure, cfg);
            let out = args.optional("out").unwrap_or("clue-reproducer.txt");
            write_file(out, &repro.to_text())?;
            eprintln!(
                "wrote minimized reproducer ({} routes, {} updates) to {out}; \
                 replay it with `clue check --replay {out}`",
                repro.table.len(),
                repro.trace.len()
            );
            Err(ArgError(format!(
                "scenario divergence: {}",
                failure.divergence
            )))
        }
    }
}

/// `clue trace <gen|info|replay>`: MRT fixtures and named scenarios.
fn trace_cmd(args: &Args) -> Result<(), ArgError> {
    match args.positionals() {
        [action] => match action.as_str() {
            "gen" => trace_gen(args),
            "info" => trace_info(args),
            "replay" => trace_replay(args),
            other => Err(ArgError(format!(
                "unknown trace action {other:?} (gen|info|replay)"
            ))),
        },
        [] => Err(ArgError("trace needs an action: gen|info|replay".into())),
        more => Err(ArgError(format!(
            "trace takes exactly one action, got {more:?}"
        ))),
    }
}

/// Builds the scenario a `trace` action operates on: either a named
/// synthetic workload (`--scenario`) or real MRT bytes (`--rib`, with
/// an optional `--updates-mrt` stream). Shared by `info` and `replay`.
fn scenario_from_args(args: &Args) -> Result<Scenario, ArgError> {
    let d = ScenarioConfig::default();
    let cfg = ScenarioConfig {
        seed: args.get_or("seed", d.seed)?,
        routes: args.get_or("routes", d.routes)?,
        updates: args.get_or("updates", d.updates)?,
        packets: args.get_or("packets", d.packets)?,
        ..d
    };
    match (args.optional("scenario"), args.optional("rib")) {
        (Some(_), Some(_)) => Err(ArgError(
            "--scenario and --rib are mutually exclusive".into(),
        )),
        (Some(name), None) => {
            if args.optional("updates-mrt").is_some() {
                return Err(ArgError(
                    "--updates-mrt pairs with --rib, not --scenario".into(),
                ));
            }
            let kind: ScenarioKind = name.parse().map_err(ArgError)?;
            Ok(Scenario::build(kind, &cfg))
        }
        (None, Some(rib_path)) => {
            let bytes = std::fs::read(rib_path).map_err(|e| io_err(rib_path, &e))?;
            let rib = parse_rib(&bytes).map_err(|e| ArgError(format!("{rib_path}: {e}")))?;
            let upd = match args.optional("updates-mrt") {
                Some(p) => {
                    let b = std::fs::read(p).map_err(|e| io_err(p, &e))?;
                    parse_updates(&b).map_err(|e| ArgError(format!("{p}: {e}")))?
                }
                None => MrtUpdates {
                    messages: Vec::new(),
                    skipped: 0,
                },
            };
            if !rib.v6_records.is_empty() {
                let with_hop = rib
                    .v6_records
                    .iter()
                    .filter(|r| r.entries.iter().any(|e| e.next_hop.is_some()))
                    .count();
                println!(
                    "ipv6 rib records: {} ({} with a next hop) — decoded, \
                     not fed to the v4 pipeline",
                    rib.v6_records.len(),
                    with_hop,
                );
            }
            if rib.skipped > 0 || upd.skipped > 0 {
                eprintln!(
                    "(skipped {} foreign RIB record(s), {} foreign update record(s))",
                    rib.skipped, upd.skipped,
                );
            }
            Ok(Scenario::from_mrt(&rib, &upd, &cfg))
        }
        (None, None) => Err(ArgError("give --scenario NAME or --rib FILE".into())),
    }
}

/// `clue trace gen`: write a canonical MRT RIB dump + update stream
/// for a synthetic table, verifying `encode → parse → encode` is
/// byte-identical before anything touches disk.
fn trace_gen(args: &Args) -> Result<(), ArgError> {
    args.check_known(&["out-rib", "out-updates", "seed", "routes", "updates"])?;
    let out_rib = args.required("out-rib")?;
    let out_updates = args.required("out-updates")?;
    let seed: u64 = args.get_or("seed", 7)?;
    let routes: usize = args.get_or("routes", 2_000)?;
    let count: usize = args.get_or("updates", 5_000)?;

    let table = FibGen::new(seed).routes(routes).generate();
    let updates = UpdateGen::new(seed ^ 0x3A7E).generate(&table, count);
    let trace = UpdateTrace::evenly_spaced(&updates, 1);
    const BASE_TS: u32 = 1_700_000_000;
    let rib_bytes = MrtRib::from_table(&table, BASE_TS).encode();
    let upd_bytes = MrtUpdates::from_trace(&trace, BASE_TS).encode();

    let reparsed = parse_rib(&rib_bytes).map_err(|e| ArgError(format!("rib round-trip: {e}")))?;
    if reparsed.encode() != rib_bytes {
        return Err(ArgError("rib round-trip: re-encode differs".into()));
    }
    let reparsed =
        parse_updates(&upd_bytes).map_err(|e| ArgError(format!("updates round-trip: {e}")))?;
    if reparsed.encode() != upd_bytes {
        return Err(ArgError("updates round-trip: re-encode differs".into()));
    }

    std::fs::write(out_rib, &rib_bytes).map_err(|e| io_err(out_rib, &e))?;
    std::fs::write(out_updates, &upd_bytes).map_err(|e| io_err(out_updates, &e))?;
    println!(
        "wrote {} routes to {out_rib} ({} bytes) and {} updates to {out_updates} \
         ({} bytes); both round-trip verified",
        table.len(),
        rib_bytes.len(),
        trace.len(),
        upd_bytes.len(),
    );
    Ok(())
}

/// `clue trace info`: describe a workload and optionally export its
/// pieces in the plain-text formats the rest of the CLI consumes.
fn trace_info(args: &Args) -> Result<(), ArgError> {
    args.check_known(&[
        "scenario",
        "rib",
        "updates-mrt",
        "seed",
        "routes",
        "updates",
        "packets",
        "export-fib",
        "export-updates",
        "export-packets",
    ])?;
    let scenario = scenario_from_args(args)?;
    println!("{}", scenario.describe());
    if let Some(path) = args.optional("export-fib") {
        write_file(path, &scenario.base.to_text())?;
        println!("wrote {} routes to {path}", scenario.base.len());
    }
    if let Some(path) = args.optional("export-updates") {
        let mut text = String::new();
        for u in scenario.updates() {
            text.push_str(&u.to_string());
            text.push('\n');
        }
        write_file(path, &text)?;
        println!("wrote {} updates to {path}", scenario.schedule.len());
    }
    if let Some(path) = args.optional("export-packets") {
        let mut text = String::with_capacity(scenario.packets.len() * 16);
        for &addr in &scenario.packets {
            let o = addr.to_be_bytes();
            text.push_str(&format!("{}.{}.{}.{}\n", o[0], o[1], o[2], o[3]));
        }
        write_file(path, &text)?;
        println!("wrote {} packets to {path}", scenario.packets.len());
    }
    Ok(())
}

/// `clue trace replay`: drive a workload's timed schedule at recorded
/// (or `--speed`-scaled) pace — against an in-process router by
/// default, or over the wire with `--addr` (the server must already
/// hold the scenario's base table; see `trace info --export-fib`).
fn trace_replay(args: &Args) -> Result<(), ArgError> {
    args.check_known(&[
        "scenario",
        "rib",
        "updates-mrt",
        "seed",
        "routes",
        "updates",
        "packets",
        "speed",
        "addr",
        "workers",
        "dred",
        "batch",
    ])?;
    let scenario = scenario_from_args(args)?;
    let speed: f64 = args.get_or("speed", 1.0)?;
    let schedule = scenario.schedule.scaled(speed);
    let batch: usize = args.get_or("batch", 64)?;
    if batch == 0 {
        return Err(ArgError("--batch must be positive".into()));
    }
    println!("{}", scenario.describe());
    println!(
        "replaying {} events over {} ms (speed {speed}x)",
        schedule.len(),
        schedule.duration_ms(),
    );
    match args.optional("addr") {
        None => trace_replay_local(args, &scenario, &schedule, batch),
        Some(addr) => trace_replay_wire(addr, &scenario, &schedule, batch),
    }
}

/// Sleeps until `at_ms` past `t0` (no-op once the deadline has passed).
fn pace(t0: std::time::Instant, at_ms: u64) {
    let due = std::time::Duration::from_millis(at_ms);
    if let Some(wait) = due.checked_sub(t0.elapsed()) {
        std::thread::sleep(wait);
    }
}

/// Offline replay: an in-process [`RouterService`] seeded with the
/// scenario's base table, the schedule submitted at pace, then the
/// packet trace looked up in batches.
fn trace_replay_local(
    args: &Args,
    scenario: &Scenario,
    schedule: &UpdateTrace,
    batch: usize,
) -> Result<(), ArgError> {
    let cfg = RouterConfig {
        workers: args.get_or("workers", 4)?,
        dred_capacity: args.get_or("dred", 1024)?,
        batch_size: batch,
        ..RouterConfig::default()
    };
    if cfg.workers == 0 || cfg.dred_capacity == 0 {
        return Err(ArgError("all sizes must be positive".into()));
    }
    let svc = RouterService::start(&scenario.base, &cfg);
    let t0 = std::time::Instant::now();
    let mut dropped = 0usize;
    for ev in &schedule.events {
        pace(t0, ev.at_ms);
        if svc.submit_update(ev.update) == clue::router::SubmitOutcome::Dropped {
            dropped += 1;
        }
    }
    let fed = t0.elapsed();
    let mut answered = 0usize;
    let mut hits = 0usize;
    for chunk in scenario.packets.chunks(batch) {
        let answers = svc.lookup_batch(chunk.to_vec());
        hits += answers.iter().filter(|a| a.is_some()).count();
        answered += answers.len();
    }
    let total = t0.elapsed();
    let s = svc.stats();
    println!(
        "schedule fed in {:.1} ms ({dropped} dropped); {answered} lookups \
         ({hits} hits) done at {:.1} ms",
        fed.as_secs_f64() * 1e3,
        total.as_secs_f64() * 1e3,
    );
    println!(
        "router: {} received -> {} applied (coalesce ratio {:.3}), {} batches, \
         {} epochs, {} arrivals / {} completions",
        s.updates_received,
        s.updates_applied,
        s.coalesce_ratio,
        s.batches,
        s.epochs,
        s.arrivals,
        s.completions,
    );
    let lookup_rate = if total.as_secs_f64() > 0.0 {
        answered as f64 / total.as_secs_f64()
    } else {
        0.0
    };
    println!("throughput: {lookup_rate:.0} lookups/sec end to end");
    let _ = svc.drain();
    Ok(())
}

/// Wire replay: the schedule pushed over one TCP connection at pace
/// (batches flushed at timing gaps), then the packet trace swept.
fn trace_replay_wire(
    addr: &str,
    scenario: &Scenario,
    schedule: &UpdateTrace,
    batch: usize,
) -> Result<(), ArgError> {
    let mut conn =
        Connection::connect(ClientConfig::to_addr(addr)).map_err(|e| io_err(addr, &e))?;
    let t0 = std::time::Instant::now();
    let mut pending: Vec<Update> = Vec::new();
    let mut due_ms = 0u64;
    for ev in &schedule.events {
        if ev.at_ms != due_ms && !pending.is_empty() {
            pace(t0, due_ms);
            conn.send_updates(&pending).map_err(|e| io_err(addr, &e))?;
            pending.clear();
        }
        due_ms = ev.at_ms;
        pending.push(ev.update);
        if pending.len() >= batch {
            pace(t0, due_ms);
            conn.send_updates(&pending).map_err(|e| io_err(addr, &e))?;
            pending.clear();
        }
    }
    if !pending.is_empty() {
        pace(t0, due_ms);
        conn.send_updates(&pending).map_err(|e| io_err(addr, &e))?;
    }
    conn.flush_acks().map_err(|e| io_err(addr, &e))?;
    let fed = t0.elapsed();
    let mut answered = 0usize;
    let mut hits = 0usize;
    for chunk in scenario.packets.chunks(batch) {
        let answers = conn.lookup(chunk).map_err(|e| io_err(addr, &e))?;
        hits += answers.iter().filter(|a| a.is_some()).count();
        answered += answers.len();
    }
    let total = t0.elapsed();
    let report = conn.close().map_err(|e| io_err(addr, &e))?;
    println!(
        "schedule fed in {:.1} ms; {answered} lookups ({hits} hits) done at {:.1} ms",
        fed.as_secs_f64() * 1e3,
        total.as_secs_f64() * 1e3,
    );
    println!(
        "client: {} accepted, {} dropped, {} reconnects, last acked seq {}",
        report.accepted, report.dropped, report.reconnects, report.last_acked,
    );
    Ok(())
}
