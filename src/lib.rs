//! # CLUE — Compression, Lookup, and UpdatE for TCAM routers
//!
//! A faithful, fully software reproduction of *"CLUE: Achieving Fast
//! Update over Compressed Table for Parallel Lookup with Reduced
//! Dynamic Redundancy"* (Yang et al., ICDCS 2012).
//!
//! This facade re-exports the workspace crates:
//!
//! | Module | Crate | Contents |
//! |---|---|---|
//! | [`fib`] | `clue-fib` | prefixes, tries, routing tables, synthetic RIBs |
//! | [`compress`] | `clue-compress` | ONRTC, ORTC, leaf-pushing, incremental updates |
//! | [`tcam`] | `clue-tcam` | TCAM model: layouts, shift accounting, timing/power |
//! | [`partition`] | `clue-partition` | even-range, sub-tree, ID-bit partitioning |
//! | [`cache`] | `clue-cache` | LRU prefix caches, RRC-ME, IP-cache baseline |
//! | [`traffic`] | `clue-traffic` | packet and BGP-update trace generators |
//! | [`core`] | `clue-core` | the parallel lookup engine, DRed schemes, TTF pipeline |
//! | [`router`] | `clue-router` | the live concurrent update-plane runtime |
//! | [`net`] | `clue-net` | wire protocol, TCP server/client, load generator |
//! | [`store`] | `clue-store` | write-ahead journal, snapshots, crash recovery |
//! | [`cluster`] | `clue-cluster` | shard map, proxy tier, WAL-shipping replication, failover |
//! | [`trace`] | `clue-trace` | MRT (RFC 6396) ingestion + adversarial scenario engine |
//! | [`oracle`] | `clue-oracle` | differential conformance oracle + fault-injection harness |
//!
//! # Quickstart
//!
//! ```
//! use clue::compress::onrtc;
//! use clue::core::engine::{Engine, EngineConfig};
//! use clue::fib::gen::FibGen;
//! use clue::traffic::PacketGen;
//!
//! // 1. A routing table (synthetic stand-in for a RIPE RIB).
//! let fib = FibGen::new(7).routes(5_000).generate();
//!
//! // 2. Compress: optimal non-overlapping equivalent (~71 %).
//! let compressed = onrtc(&fib);
//! assert!(compressed.is_non_overlapping());
//!
//! // 3. Parallel lookup over 4 TCAM chips with Dynamic Redundancy.
//! let cfg = EngineConfig::default();
//! let mut engine = Engine::clue(&compressed, 1024, cfg);
//! let trace = PacketGen::new(9).generate(&compressed, 20_000);
//! let (report, _) = engine.run(&trace);
//! assert!(report.speedup(cfg.service_clocks) > 3.0);
//! ```
//!
//! See `DESIGN.md` for the system inventory and `EXPERIMENTS.md` for the
//! paper-vs-measured record of every table and figure.

#![warn(missing_docs)]

pub use clue_cache as cache;
pub use clue_cluster as cluster;
pub use clue_compress as compress;
pub use clue_core as core;
pub use clue_fib as fib;
pub use clue_net as net;
pub use clue_oracle as oracle;
pub use clue_partition as partition;
pub use clue_router as router;
pub use clue_store as store;
pub use clue_tcam as tcam;
pub use clue_trace as trace;
pub use clue_traffic as traffic;
